"""UDP, ICMP and DNS tests."""

import pytest

from repro.net.addresses import ipv4
from repro.net.dns import (
    DnsDecodeError,
    DnsRecord,
    DnsResolver,
    DnsServer,
    Zone,
    decode_query,
    decode_response,
    encode_query,
    encode_response,
)
from repro.net.icmp import IcmpStack, ping
from repro.net.topology import lan_pair
from repro.net.udp import UdpStack

A, B = ipv4("10.0.0.1"), ipv4("10.0.0.2")


class TestUdp:
    def test_datagram_roundtrip(self, lan, drive):
        sim, a, b = lan
        ua, ub = UdpStack(a), UdpStack(b)
        server = ub.bind(5000)

        def flow():
            client = ua.bind(0)
            client.sendto(b"ping", B, 5000)
            data, (src, port) = yield server.recvfrom()
            server.sendto(b"pong", src, port)
            reply, _ = yield client.recvfrom()
            return bytes(data), bytes(reply)

        assert drive(sim, flow()) == (b"ping", b"pong")

    def test_unbound_port_drops(self, lan):
        sim, a, b = lan
        ua, ub = UdpStack(a), UdpStack(b)
        ua.bind(1234).sendto(b"x", B, 9999)
        sim.run()
        assert ub.rx_dropped == 1

    def test_double_bind_rejected(self, lan):
        _sim, a, _b = lan
        ua = UdpStack(a)
        ua.bind(53)
        with pytest.raises(OSError):
            ua.bind(53)

    def test_ephemeral_ports_unique(self, lan):
        _sim, a, _b = lan
        ua = UdpStack(a)
        ports = {ua.bind(0).port for _ in range(50)}
        assert len(ports) == 50
        assert all(p >= 49152 for p in ports)

    def test_close_releases_port(self, lan):
        _sim, a, _b = lan
        ua = UdpStack(a)
        sock = ua.bind(7000)
        sock.close()
        ua.bind(7000)  # no error

    def test_send_on_closed_socket_rejected(self, lan):
        _sim, a, _b = lan
        ua = UdpStack(a)
        sock = ua.bind(7000)
        sock.close()
        with pytest.raises(RuntimeError):
            sock.sendto(b"x", B, 1)


class TestIcmp:
    def test_ping_rtt_matches_path_delay(self, lan, drive):
        sim, a, b = lan
        icmp_a, _icmp_b = IcmpStack(a), IcmpStack(b)
        rtts = drive(sim, ping(icmp_a, B, count=5, interval=0.01))
        assert len(rtts) == 5
        for rtt in rtts:
            assert rtt is not None
            # 2 x 100 us propagation + serialization + reply cost.
            assert 2e-4 < rtt < 1e-3

    def test_ping_unreachable_times_out(self, lan, drive):
        sim, a, b = lan
        icmp_a = IcmpStack(a)
        # no ICMP stack on b at all -> no replies
        rtts = drive(sim, ping(icmp_a, ipv4("10.0.0.99"), count=2,
                               interval=0.01, timeout=0.2))
        assert rtts == [None, None]

    def test_echo_reply_counter(self, lan, drive):
        sim, a, b = lan
        icmp_a, icmp_b = IcmpStack(a), IcmpStack(b)
        drive(sim, ping(icmp_a, B, count=3, interval=0.01))
        assert icmp_b.echo_replies_sent == 3


class TestDnsWireFormat:
    def test_query_roundtrip(self):
        data = encode_query("www.example.com", "A", 7)
        assert decode_query(data) == (7, "www.example.com", "A")

    def test_a_record_roundtrip(self):
        record = DnsRecord(name="h", rtype="A", ttl=60.0, address=ipv4("1.2.3.4"))
        qid, records = decode_response(encode_response(9, [record]))
        assert qid == 9
        assert records == [record]

    def test_hip_record_roundtrip(self):
        from repro.net.addresses import ipv6

        record = DnsRecord(
            name="vm1", rtype="HIP", ttl=30.0, hit=ipv6("2001:10::42"),
            host_id=b"RSA:fakekey", rvs=("rvs1.example", "rvs2.example"),
        )
        _, records = decode_response(encode_response(1, [record]))
        assert records == [record]

    def test_record_validation(self):
        with pytest.raises(ValueError):
            DnsRecord(name="x", rtype="A")  # missing address
        with pytest.raises(ValueError):
            DnsRecord(name="x", rtype="AAAA", address=ipv4("1.2.3.4"))
        with pytest.raises(ValueError):
            DnsRecord(name="x", rtype="HIP")  # missing HIT
        with pytest.raises(ValueError):
            DnsRecord(name="x", rtype="MX", address=ipv4("1.2.3.4"))


class TestDnsService:
    def _setup(self, sim, a, b):
        ua, ub = UdpStack(a), UdpStack(b)
        zone = Zone()
        zone.add(DnsRecord(name="db.internal", rtype="A", ttl=10.0,
                           address=ipv4("10.0.0.2")))
        server = DnsServer(b, ub, zone=zone)
        resolver = DnsResolver(a, ua, server_addr=B)
        return server, resolver

    def test_resolve(self, lan, drive):
        sim, a, b = lan
        server, resolver = self._setup(sim, a, b)
        records = drive(sim, resolver.query("db.internal", "A"))
        assert records[0].address == ipv4("10.0.0.2")
        assert server.queries_served == 1

    def test_negative_answer_empty(self, lan, drive):
        sim, a, b = lan
        _server, resolver = self._setup(sim, a, b)
        assert drive(sim, resolver.query("nope.internal", "A")) == []

    def test_cache_hits_skip_server(self, lan, drive):
        sim, a, b = lan
        server, resolver = self._setup(sim, a, b)

        def flow():
            yield from resolver.query("db.internal", "A")
            yield from resolver.query("db.internal", "A")
            return server.queries_served

        assert drive(sim, flow()) == 1

    def test_cache_expires_after_ttl(self, lan):
        sim, a, b = lan
        server, resolver = self._setup(sim, a, b)

        def flow():
            yield from resolver.query("db.internal", "A")
            yield sim.timeout(11.0)  # past the 10 s TTL
            yield from resolver.query("db.internal", "A")
            return server.queries_served

        proc = sim.process(flow())
        assert sim.run(until=proc) == 2

    def test_zone_remove(self, lan, drive):
        sim, a, b = lan
        server, resolver = self._setup(sim, a, b)
        server.zone.remove("db.internal", "A")
        assert drive(sim, resolver.query("db.internal", "A")) == []

    def test_query_timeout_without_server(self, lan):
        sim, a, _b = lan
        ua = UdpStack(a)
        resolver = DnsResolver(a, ua, server_addr=ipv4("10.0.0.77"))

        def flow():
            with pytest.raises(TimeoutError):
                yield from resolver.query("x", "A", timeout=0.1, retries=1)
            return True

        proc = sim.process(flow())
        assert sim.run(until=proc) is True


class TestDnsHostileInput:
    """Regressions for the decode hardening: malformed wire input must
    surface as DnsDecodeError (a ValueError), never struct.error or
    IndexError, and neither endpoint may die on a hostile datagram."""

    def test_truncated_query_raises_domain_error(self):
        raw = encode_query("www.example.com", "A", 7)
        for cut in (0, 1, 2, 4, len(raw) - 1):
            with pytest.raises(DnsDecodeError):
                decode_query(raw[:cut])

    def test_truncated_response_raises_domain_error(self):
        record = DnsRecord(name="h", rtype="A", ttl=60.0, address=ipv4("1.2.3.4"))
        raw = encode_response(9, [record])
        for cut in (0, 4, 6, len(raw) - 1):
            with pytest.raises(DnsDecodeError):
                decode_response(raw[:cut])

    def test_address_family_mismatch_rejected(self):
        record = DnsRecord(name="h", rtype="A", ttl=60.0, address=ipv4("1.2.3.4"))
        raw = encode_response(9, [record])
        # The family byte sits after header(5) + name(2+1) + rtype(2+1) + ttl(4).
        assert raw[15] == 4
        mutated = raw[:15] + bytes([6]) + raw[16:]
        with pytest.raises(DnsDecodeError, match="family-6"):
            decode_response(mutated)

    def test_inflated_rendezvous_count_rejected(self):
        from repro.net.addresses import ipv6

        record = DnsRecord(name="vm", rtype="HIP", ttl=30.0,
                           hit=ipv6("2001:10::42"), host_id=b"k", rvs=())
        raw = encode_response(1, [record])
        # With no rendezvous names the count byte is the final byte.
        mutated = raw[:-1] + b"\xff"
        with pytest.raises(DnsDecodeError):
            decode_response(mutated)

    def test_server_survives_malformed_queries(self, lan, drive):
        sim, a, b = lan
        ua, ub = UdpStack(a), UdpStack(b)
        zone = Zone()
        zone.add(DnsRecord(name="db.internal", rtype="A", ttl=10.0,
                           address=ipv4("10.0.0.2")))
        server = DnsServer(b, ub, zone=zone)
        attacker = ua.bind(0)
        for hostile in (b"", b"\x00", b"\x00\x01\x02\xff", b"\xff" * 40):
            attacker.sendto(hostile, B, 53)
        sim.run(until=1.0)
        resolver = DnsResolver(a, ua, server_addr=B)
        records = drive(sim, resolver.query("db.internal", "A"))
        assert records[0].address == ipv4("10.0.0.2")
        assert server.queries_served == 1  # hostile datagrams never counted

    def test_resolver_retries_past_hostile_response(self, lan, drive):
        sim, a, b = lan
        ua, ub = UdpStack(a), UdpStack(b)
        sock = ub.bind(53)
        record = DnsRecord(name="db.internal", rtype="A", ttl=10.0,
                           address=ipv4("10.0.0.2"))

        def hostile_then_honest():
            _data, (src, port) = yield sock.recvfrom()
            sock.sendto(b"\x00\x01\x02", src, port)  # corrupt: short header
            data, (src, port) = yield sock.recvfrom()
            qid, _qname, _qtype = decode_query(bytes(data))
            sock.sendto(encode_response(qid, [record]), src, port)

        sim.process(hostile_then_honest())
        resolver = DnsResolver(a, ua, server_addr=B)
        records = drive(sim, resolver.query("db.internal", "A", timeout=1.0, retries=2))
        assert records[0].address == ipv4("10.0.0.2")
