"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import AllOf, AnyOf, Event, Interrupt, Simulator, Timeout
from repro.sim.engine import SimTimeoutError


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_timeout_advances_clock(sim):
    seen = []

    def proc():
        yield sim.timeout(1.5)
        seen.append(sim.now)

    sim.process(proc())
    sim.run()
    assert seen == [1.5]


def test_negative_timeout_rejected(sim):
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_events_fire_in_time_order(sim):
    order = []

    def proc(name, delay):
        yield sim.timeout(delay)
        order.append(name)

    sim.process(proc("late", 2.0))
    sim.process(proc("early", 1.0))
    sim.process(proc("mid", 1.5))
    sim.run()
    assert order == ["early", "mid", "late"]


def test_same_time_events_fifo(sim):
    """Ties break by scheduling order — the determinism guarantee."""
    order = []

    def proc(name):
        yield sim.timeout(1.0)
        order.append(name)

    for name in "abcdef":
        sim.process(proc(name))
    sim.run()
    assert order == list("abcdef")


def test_process_return_value(sim):
    def child():
        yield sim.timeout(1)
        return 42

    def parent():
        result = yield sim.process(child())
        return result * 2

    proc = sim.process(parent())
    assert sim.run(until=proc) == 84


def test_process_exception_propagates_to_waiter(sim):
    def child():
        yield sim.timeout(1)
        raise ValueError("boom")

    def parent():
        with pytest.raises(ValueError, match="boom"):
            yield sim.process(child())
        return "handled"

    proc = sim.process(parent())
    assert sim.run(until=proc) == "handled"


def test_unhandled_process_crash_surfaces(sim):
    def bad():
        yield sim.timeout(1)
        raise RuntimeError("unwatched crash")

    sim.process(bad())
    with pytest.raises(RuntimeError, match="unhandled crash"):
        sim.run()


def test_multiple_crashes_in_one_step_all_reported(sim):
    """One event cascade can crash several waiters; every name must surface.

    Regression: ``step()`` used to pop a single crash record, silently
    discarding the rest.
    """
    evt = sim.event()

    def bad(tag):
        yield evt
        raise RuntimeError(f"{tag} exploded")

    sim.process(bad("alpha"), name="crash-alpha")
    sim.process(bad("beta"), name="crash-beta")
    evt.succeed(None)
    with pytest.raises(RuntimeError, match="unhandled crash") as excinfo:
        sim.run()
    message = str(excinfo.value)
    assert "crash-alpha" in message
    assert "crash-beta" in message
    assert "processes" in message  # plural wording for multi-crash steps
    assert not sim._crashed  # fully drained, nothing misattributed later


def test_run_until_time(sim):
    ticks = []

    def ticker():
        while True:
            yield sim.timeout(1.0)
            ticks.append(sim.now)

    sim.process(ticker())
    sim.run(until=3.5)
    assert ticks == [1.0, 2.0, 3.0]
    assert sim.now == 3.5


def test_run_until_past_raises(sim):
    sim.run(until=5.0)
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_run_until_event_deadlock_detected(sim):
    evt = sim.event()
    with pytest.raises(RuntimeError, match="starved"):
        sim.run(until=evt)


def test_event_succeed_value(sim):
    evt = sim.event()

    def waiter():
        value = yield evt
        return value

    def trigger():
        yield sim.timeout(1)
        evt.succeed("payload")

    proc = sim.process(waiter())
    sim.process(trigger())
    assert sim.run(until=proc) == "payload"


def test_event_double_trigger_rejected(sim):
    evt = sim.event()
    evt.succeed(1)
    with pytest.raises(RuntimeError):
        evt.succeed(2)


def test_event_fail_requires_exception(sim):
    evt = sim.event()
    with pytest.raises(TypeError):
        evt.fail("not an exception")


def test_yield_already_processed_event(sim):
    """Waiting on an event that already fired resumes immediately."""
    evt = sim.event()
    evt.succeed("early")
    sim.run(until=0)  # process the event

    def waiter():
        value = yield evt
        return (sim.now, value)

    proc = sim.process(waiter())
    assert sim.run(until=proc) == (0.0, "early")


def test_yield_non_event_raises_in_process(sim):
    def bad():
        yield 42

    def parent():
        with pytest.raises(TypeError, match="must yield Event"):
            yield sim.process(bad())

    proc = sim.process(parent())
    sim.run(until=proc)


def test_interrupt_delivers_cause(sim):
    caught = []

    def sleeper():
        try:
            yield sim.timeout(100)
        except Interrupt as exc:
            caught.append(exc.cause)
        return "done"

    def interrupter(target):
        yield sim.timeout(1)
        target.interrupt("wake up")

    target = sim.process(sleeper())
    sim.process(interrupter(target))
    assert sim.run(until=target) == "done"
    assert caught == ["wake up"]
    assert sim.now == pytest.approx(1.0)


def test_interrupt_dead_process_rejected(sim):
    def quick():
        yield sim.timeout(0.1)

    proc = sim.process(quick())
    sim.run(until=proc)
    with pytest.raises(RuntimeError, match="dead process"):
        proc.interrupt()


def test_allof_gathers_values(sim):
    def worker(n):
        yield sim.timeout(n)
        return n * 10

    def parent():
        procs = [sim.process(worker(n)) for n in (3, 1, 2)]
        values = yield AllOf(sim, procs)
        return values

    proc = sim.process(parent())
    assert sim.run(until=proc) == [30, 10, 20]
    assert sim.now == pytest.approx(3.0)


def test_anyof_returns_first(sim):
    def worker(n):
        yield sim.timeout(n)
        return n

    def parent():
        fast = sim.process(worker(1))
        slow = sim.process(worker(5))
        winner, value = yield AnyOf(sim, [fast, slow])
        return winner is fast, value

    proc = sim.process(parent())
    assert sim.run(until=proc) == (True, 1)


def test_allof_empty_fires_immediately(sim):
    def parent():
        values = yield AllOf(sim, [])
        return values

    proc = sim.process(parent())
    assert sim.run(until=proc) == []


def test_call_at(sim):
    fired = []
    sim.call_at(2.5, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [2.5]


def test_call_at_past_raises(sim):
    sim.run(until=1.0)
    with pytest.raises(ValueError):
        sim.call_at(0.5, lambda: None)


def test_with_deadline_times_out(sim):
    def slow():
        yield sim.timeout(100)
        return "never"

    def parent():
        with pytest.raises(SimTimeoutError):
            yield sim.process(sim.with_deadline(slow(), 2.0))
        return sim.now

    proc = sim.process(parent())
    assert sim.run(until=proc) == pytest.approx(2.0)


def test_with_deadline_passes_result(sim):
    def quick():
        yield sim.timeout(1)
        return "made it"

    def parent():
        result = yield sim.process(sim.with_deadline(quick(), 10.0))
        return result

    proc = sim.process(parent())
    assert sim.run(until=proc) == "made it"


def test_peek(sim):
    assert sim.peek() == float("inf")
    sim.timeout(3.0)
    assert sim.peek() == 3.0


# ------------------------------------------------------- deterministic shutdown --

def test_close_runs_orphan_finalizers_now(sim):
    order = []

    def handler(tag):
        try:
            yield sim.timeout(1000)
        finally:
            order.append(tag)

    sim.process(handler("first"))
    sim.process(handler("second"))
    sim.run(until=1.0)
    assert order == []  # both parked, finalizers pending
    closed = sim.close()
    assert closed == 2
    assert order == ["first", "second"]  # creation order, not GC order


def test_close_is_idempotent_and_skips_finished(sim):
    def quick():
        yield sim.timeout(0.1)
        return "done"

    proc = sim.process(quick())
    assert sim.run(until=proc) == "done"
    assert sim.close() == 0  # registry pruned on normal completion
    assert sim.close() == 0


def test_closed_process_is_dead_and_detached(sim):
    evt = sim.event()

    def waiter():
        yield evt

    proc = sim.process(waiter())
    sim.run(until=0.0)
    assert proc.is_alive
    proc.close()
    assert not proc.is_alive
    assert evt.callbacks == []  # detached: firing evt later resumes nobody
    assert sim.close() == 0


def test_close_sweeps_processes_spawned_during_cleanup(sim):
    order = []

    def grandchild():
        try:
            yield sim.timeout(1000)
        finally:
            order.append("grandchild")

    def parent():
        try:
            yield sim.timeout(1000)
        finally:
            sim.process(grandchild())
            order.append("parent")

    sim.process(parent())
    sim.run(until=1.0)
    # The grandchild registers mid-sweep and is closed in the next round
    # (its body never started, so its finally doesn't run — that's fine,
    # an unstarted generator has acquired no resources).
    assert sim.close() == 2
    assert order == ["parent"]


def test_context_manager_closes():
    with Simulator() as sim:
        hits = []

        def p():
            try:
                yield sim.timeout(1000)
            finally:
                hits.append(1)

        sim.process(p())
        sim.run(until=1.0)
    assert hits == [1]
