"""Scenario-builder and experiment-runner integration tests (small scale)."""

import pytest

from repro.apps.workload import ClosedLoopClients
from repro.scenarios.experiments import (
    run_fig2_point,
    run_fig3,
    run_httperf_point,
)
from repro.scenarios.rubis_cloud import (
    FRONTEND_PORT,
    SECURITY_MODES,
    build_rubis_cloud,
)


class TestDeploymentBuilder:
    @pytest.mark.parametrize("security", SECURITY_MODES)
    def test_builds_and_serves(self, security):
        dep = build_rubis_cloud(seed=3, security=security, hip_rsa_bits=512)
        sim = dep.sim
        workload = ClosedLoopClients(
            dep.client_node, dep.client_tcp, dep.frontend_addr, FRONTEND_PORT,
            n_clients=2, rng=dep.rngs.stream("t"), warmup=0.5,
        )
        done = sim.process(workload.run(1.5))
        result = sim.run(until=done)
        assert result.successes > 3
        assert result.failures == 0

    def test_architecture_matches_figure1(self):
        dep = build_rubis_cloud(seed=3, security="basic", hip_rsa_bits=512)
        assert len(dep.web_vms) == 3  # three web servers
        assert dep.db_vm.instance_type.name == "m1.large"
        assert all(vm.instance_type.name == "t1.micro" for vm in dep.web_vms)
        # LB is outside the cloud: not one of the provider's instances.
        assert dep.lb_node not in dep.provider.instances
        assert len(dep.lb.backends) == 3

    def test_multi_tenancy_present(self):
        dep = build_rubis_cloud(seed=3, security="basic", hip_rsa_bits=512)
        colocated = dep.provider.colocated_tenants()
        assert any(len(tenants) > 1 for tenants in colocated)

    def test_hip_mode_wires_daemons(self):
        dep = build_rubis_cloud(seed=3, security="hip", hip_rsa_bits=512)
        assert set(dep.daemons) == {"loadbalancer", "db0", "web0", "web1", "web2"}
        # Backends are addressed by LSI, not by routable addresses.
        from repro.net.addresses import is_lsi

        assert all(is_lsi(b.addr) for b in dep.lb.backends)

    def test_ssl_mode_wires_vpn(self):
        dep = build_rubis_cloud(seed=3, security="ssl", hip_rsa_bits=512)
        assert set(dep.vpn_daemons) == {"loadbalancer", "db0", "web0", "web1", "web2"}
        from repro.tls.vpn import VPN_SUBNET

        assert all(VPN_SUBNET.contains(b.addr) for b in dep.lb.backends)

    def test_deterministic_for_seed(self):
        r1 = run_fig2_point("basic", n_clients=3, duration=1.5, warmup=0.5, seed=11)
        r2 = run_fig2_point("basic", n_clients=3, duration=1.5, warmup=0.5, seed=11)
        assert r1.throughput == r2.throughput
        assert r1.mean_latency == r2.mean_latency

    def test_seed_changes_results(self):
        r1 = run_fig2_point("basic", n_clients=3, duration=1.5, warmup=0.5, seed=11)
        r2 = run_fig2_point("basic", n_clients=3, duration=1.5, warmup=0.5, seed=12)
        assert r1.mean_latency != r2.mean_latency

    def test_invalid_security_rejected(self):
        with pytest.raises(ValueError):
            build_rubis_cloud(seed=1, security="tls13")
        with pytest.raises(ValueError):
            build_rubis_cloud(seed=1, security="basic", provider_kind="edge")


class TestExperimentRunners:
    def test_fig2_point_smoke(self):
        point = run_fig2_point("hip", n_clients=3, duration=1.5, warmup=0.5,
                               seed=5)
        assert point.security == "hip"
        assert point.successes > 0
        assert point.throughput > 0

    def test_httperf_point_smoke(self):
        point = run_httperf_point("basic", rate=20.0, duration=2.0, seed=5)
        assert point.successes > 30
        assert 0 < point.mean_ms < 1000

    def test_httperf_uses_single_web_and_cache(self):
        from repro.scenarios.rubis_cloud import build_rubis_cloud

        dep = build_rubis_cloud(seed=5, security="basic", n_web=1,
                                cache_enabled=True, hip_rsa_bits=512)
        assert len(dep.web_vms) == 1
        assert dep.db_server.cache_enabled

    def test_fig3_single_mode_smoke(self):
        points = run_fig3(modes=("ipv4",), transfer_bytes=1_000_000,
                          ping_count=3, hip_rsa_bits=512)
        assert len(points) == 1
        assert points[0].throughput_mbps > 50
        assert 0 < points[0].rtt_ms < 2

    def test_fig3_hip_mode_smoke(self):
        points = run_fig3(modes=("hit-ipv4",), transfer_bytes=1_000_000,
                          ping_count=3, hip_rsa_bits=512)
        assert points[0].throughput_mbps > 20
