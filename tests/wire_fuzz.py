"""Shared wire-parser fuzzing helpers.

Every wire codec in the tree owes its callers the same contract: malformed
input raises the codec's *domain* error (``HipParseError``,
``DnsDecodeError``, ``TeredoParseError``) — never a raw ``struct.error``
or ``IndexError``.  These helpers drive that contract with truncation
sweeps, seeded byte flips and length/count-field stomps; the HIP, DNS and
Teredo fuzz suites share them so a new parser only has to plug in its
builder, parser and error type.
"""

from __future__ import annotations

import struct

__all__ = ["sweep_truncations", "sweep_byte_flips", "stomp_fields"]


def sweep_truncations(raw: bytes, parse, error) -> None:
    """Every strict prefix of ``raw`` must be rejected with ``error``.

    Any other exception (``struct.error``, ``IndexError``) propagates and
    fails the calling test; silent acceptance fails it explicitly.
    """
    for cut in range(len(raw)):
        try:
            parse(raw[:cut])
        except error:
            continue
        raise AssertionError(
            f"parser accepted truncation to {cut} of {len(raw)} bytes"
        )


def sweep_byte_flips(raw: bytes, parse, error, rng, rounds: int = 200) -> None:
    """Seeded single-bit corruptions must parse or raise ``error``.

    A successful parse of a corrupted message is acceptable (the flip may
    land in an opaque field); a raw ``struct.error`` / ``IndexError`` is
    not, and propagates to fail the calling test.
    """
    buf = bytearray(raw)
    for _ in range(rounds):
        pos = rng.randrange(len(buf))
        bit = 1 << rng.randrange(8)
        buf[pos] ^= bit
        try:
            parse(bytes(buf))
        except error:
            pass
        buf[pos] ^= bit


_STOMP_1 = (0x00, 0x01, 0x7F, 0xFF)
_STOMP_2 = (0x0000, 0x0001, 0x7FFF, 0xFFFF)


def stomp_fields(raw: bytes, parse, error, rng, rounds: int = 64) -> None:
    """Overwrite seeded 1- and 2-byte windows with boundary values.

    This is the length/count-field attack: a declared length inflated past
    the buffer, a count of zero, a count of 65535.  The parser must accept
    or raise ``error`` — anything else propagates.
    """
    for _ in range(rounds):
        width = rng.choice((1, 2))
        if len(raw) < width:
            continue
        pos = rng.randrange(len(raw) - width + 1)
        if width == 1:
            patch = bytes([rng.choice(_STOMP_1)])
        else:
            patch = struct.pack(">H", rng.choice(_STOMP_2))
        mutated = raw[:pos] + patch + raw[pos + width:]
        try:
            parse(mutated)
        except error:
            pass
