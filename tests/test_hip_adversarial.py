"""Adversarial HIP tests: forged/tampered control packets must be ignored,
and the paper's cross-family handover claims must hold."""

import random

import pytest

from repro.crypto.hmac_kdf import hmac_digest
from repro.hip import packets as hp
from repro.hip.daemon import HipConfig, HipDaemon
from repro.hip.identity import HostIdentity, hit_from_public_key
from repro.net.addresses import ipv4, ipv6, prefix
from repro.net.icmp import IcmpStack, ping
from repro.net.topology import lan_pair, wire
from repro.sim import Simulator

A, B = ipv4("10.0.0.1"), ipv4("10.0.0.2")


class TestForgedControlPackets:
    def test_i2_with_wrong_puzzle_solution_ignored(self, hip_pair, drive):
        sim, a, b, da, db = hip_pair
        # Let the real exchange reach I2-SENT, then race a forged I2 with a
        # bogus J.  The responder must never establish from the forgery.
        forged = hp.HipPacket(packet_type=hp.I2, sender_hit=da.hit,
                              receiver_hit=db.hit)
        forged.add(hp.SOLUTION, hp.build_solution(
            db._puzzle.k, 0, db._puzzle.i, b"\x00" * 8))
        forged.add(hp.DIFFIE_HELLMAN, hp.build_dh(1, b"\x02" * 96))
        forged.add(hp.ESP_INFO, hp.build_esp_info(0, 0xBAD))
        forged.add(hp.HOST_ID, hp.build_host_id(da.identity.public_key_bytes))
        forged.add(hp.HMAC_PARAM, b"\x00" * 20)
        forged.add(hp.HIP_SIGNATURE, b"\x00" * 64)
        da._send_control(forged, B)
        sim.run(until=2)
        assoc = db.assocs.get(da.hit)
        assert assoc is None or not assoc.is_established

    def test_i2_with_mismatched_host_id_ignored(self, hip_pair, session_identities):
        sim, a, b, da, db = hip_pair
        # HOST_ID whose HIT does not match the sender HIT: identity theft.
        from repro.crypto.puzzle import solve_puzzle

        j, _ = solve_puzzle(db._puzzle, da.hit.packed(), db.hit.packed(),
                            random.Random(1))
        forged = hp.HipPacket(packet_type=hp.I2, sender_hit=da.hit,
                              receiver_hit=db.hit)
        forged.add(hp.SOLUTION, hp.build_solution(db._puzzle.k, 0, db._puzzle.i, j))
        forged.add(hp.DIFFIE_HELLMAN, hp.build_dh(1, b"\x02" * 96))
        forged.add(hp.ESP_INFO, hp.build_esp_info(0, 0xBAD))
        # c's key, a's HIT: must be rejected by the HIT<->HI binding check.
        forged.add(hp.HOST_ID, hp.build_host_id(
            session_identities["c"].public_key_bytes))
        forged.add(hp.HMAC_PARAM, b"\x00" * 20)
        forged.add(hp.HIP_SIGNATURE, b"\x00" * 64)
        da._send_control(forged, B)
        sim.run(until=2)
        assoc = db.assocs.get(da.hit)
        assert assoc is None or not assoc.is_established

    def test_r2_with_bad_hmac_ignored(self, hip_pair):
        """An attacker cannot complete the exchange with a forged R2."""
        sim, a, b, da, db = hip_pair
        # Break the responder so it never sends its own (valid) R2.
        db._handle_i2 = lambda i2, ip: iter(())  # type: ignore[assignment]
        proc = sim.process(da.associate(db.hit, timeout=4.0))

        def forge_r2():
            yield sim.timeout(1.0)  # a is in I2-SENT by now
            forged = hp.HipPacket(packet_type=hp.R2, sender_hit=db.hit,
                                  receiver_hit=da.hit)
            forged.add(hp.ESP_INFO, hp.build_esp_info(0, 0xE71))
            forged.add(hp.HMAC_PARAM, b"\x11" * 20)
            forged.add(hp.HIP_SIGNATURE, b"\x22" * 64)
            db._send_control(forged, A)

        sim.process(forge_r2())
        from repro.hip.daemon import HipError

        with pytest.raises((HipError, RuntimeError)):
            sim.run(until=proc)
        assert not da.assocs[db.hit].is_established

    def test_forged_close_does_not_kill_association(self, hip_pair, drive):
        sim, a, b, da, db = hip_pair
        drive(sim, da.associate(db.hit))
        forged = hp.HipPacket(packet_type=hp.CLOSE, sender_hit=da.hit,
                              receiver_hit=db.hit)
        forged.add(hp.ECHO_REQUEST_SIGNED, b"\x00" * 8)
        forged.add(hp.HMAC_PARAM, b"\x00" * 20)  # attacker lacks the HMAC key
        da._send_control(forged, B)
        sim.run(until=sim.now + 2)
        assert db.assocs[da.hit].is_established  # CLOSE ignored

    def test_rekey_with_bad_signature_ignored(self, hip_pair, drive):
        sim, a, b, da, db = hip_pair
        drive(sim, da.associate(db.hit))
        assoc_b = db.assocs[da.hit]
        old_spi = assoc_b.sa_in.spi
        # HMAC valid (attacker on-path replaying key material can't have it;
        # here we simulate a *partially* forged packet: valid HMAC structure
        # cannot be built without the key, so use garbage and expect a drop).
        forged = hp.HipPacket(packet_type=hp.UPDATE, sender_hit=da.hit,
                              receiver_hit=db.hit)
        forged.add(hp.ESP_INFO, hp.build_esp_info(old_spi, 0xF00D, keymat_index=1))
        forged.add(hp.SEQ, hp.build_seq(12345))
        forged.add(hp.HMAC_PARAM, b"\x00" * 20)
        forged.add(hp.HIP_SIGNATURE, b"\x00" * 64)
        da._send_control(forged, B)
        sim.run(until=sim.now + 2)
        assert assoc_b.sa_in.spi == old_spi
        assert assoc_b.rekey_count == 0

    def test_esp_injection_with_unknown_spi_dropped(self, hip_pair, drive):
        sim, a, b, da, db = hip_pair
        drive(sim, da.associate(db.hit))
        from repro.net.packet import ESPHeader, Packet

        spoofed = Packet(headers=(ESPHeader(spi=0xDEADBEEF, seq=1),), payload=b"x")
        a.send_ip(B, "esp", spoofed)
        sim.run(until=sim.now + 1)
        assert db.drops_esp >= 1


class TestCrossFamilyHandover:
    def test_v4_to_v6_locator_handover(self, sim, session_identities, drive):
        """§IV-C: HIP 'supports IPv4-IPv6 handovers' — outer family flips
        under a live association while applications keep their HIT view."""
        a, b = lan_pair(sim, "a", "b")
        # Dual-stack the existing link.
        ia, ib = a.interface("eth0"), b.interface("eth0")
        va, vb = ipv6("2001:db8::1"), ipv6("2001:db8::2")
        ia.add_address(va)
        ib.add_address(vb)
        a.routes.add(prefix("2001:db8::/64"), ia)
        b.routes.add(prefix("2001:db8::/64"), ib)
        da = HipDaemon(a, session_identities["a"], rng=random.Random(1))
        db_ = HipDaemon(b, session_identities["b"], rng=random.Random(2))
        da.add_peer(db_.hit, [B])
        db_.add_peer(da.hit, [A])
        icmp_a, _ = IcmpStack(a), IcmpStack(b)

        drive(sim, da.associate(db_.hit))
        assert db_.assocs[da.hit].peer_locator.family == 4

        da.move_to(va)  # announce the IPv6 locator
        sim.run(until=sim.now + 3)
        assert db_.assocs[da.hit].peer_locator == va  # family flipped

        rtts = drive(sim, ping(icmp_a, db_.hit, count=2, interval=0.01))
        assert all(r is not None for r in rtts)
