"""Conformance-rule tests (CONF001-CONF003).

Three layers: mutation-style fixtures proving each rule fires on seeded
broken snippets (and stays silent on clean/suppressed ones), unit tests for
the guard-inference machinery, and the acceptance check that the state
graph extracted from the *real* ``hip/daemon.py`` / ``tls/vpn.py`` matches
the declarative RFC tables edge-for-edge.
"""

from __future__ import annotations

import ast
import pathlib
import textwrap

import pytest

import repro
from repro.analysis import analyze_source
from repro.analysis.base import ModuleContext
from repro.analysis.statemachine import HIP_SPEC, SPECS, VPN_SPEC, extract, spec_for

REPO_ROOT = pathlib.Path(repro.__file__).resolve().parents[2]
HIP_PATH = "src/repro/hip/daemon.py"
VPN_PATH = "src/repro/tls/vpn.py"


def findings(source: str, rule: str, path: str = HIP_PATH) -> list:
    return [
        f
        for f in analyze_source(textwrap.dedent(source), path, rules={rule})
        if not f.suppressed and f.rule == rule
    ]


def _extract(path: str) -> object:
    source = (REPO_ROOT / path).read_text()
    ctx = ModuleContext(path=path, source=source, tree=ast.parse(source))
    return extract(ctx)


# A fixture covering every HIP spec edge: clean under CONF001 and CONF002.
ALL_HIP_EDGES = """
    class D:
        def drive(self, assoc):
            self._transition(assoc, HipState.I1_SENT,
                             expect_from=(HipState.UNASSOCIATED,))
            self._transition(assoc, HipState.I2_SENT,
                             expect_from=(HipState.I1_SENT,))
            self._transition(assoc, HipState.ESTABLISHED,
                             expect_from=(HipState.UNASSOCIATED, HipState.I2_SENT))
            self._transition(assoc, HipState.FAILED,
                             expect_from=(HipState.UNASSOCIATED, HipState.I1_SENT,
                                          HipState.I2_SENT))
            self._transition(assoc, HipState.CLOSING,
                             expect_from=(HipState.ESTABLISHED,))
            self._transition(assoc, HipState.CLOSED,
                             expect_from=(HipState.ESTABLISHED, HipState.CLOSING))
"""


# ------------------------------------------------------------------ CONF001 --


def test_conf001_fires_on_transition_outside_spec():
    src = """
        class D:
            def f(self, assoc):
                if assoc.state != HipState.ESTABLISHED:
                    return
                self._transition(assoc, HipState.I1_SENT)
    """
    [finding] = findings(src, "CONF001")
    assert "ESTABLISHED -> I1_SENT" in finding.message


def test_conf001_fires_on_statically_undeterminable_source():
    src = """
        class D:
            def f(self, assoc):
                self._transition(assoc, HipState.CLOSED)
    """
    [finding] = findings(src, "CONF001")
    assert "expect_from" in finding.message


def test_conf001_fires_on_illegal_expect_from_edge():
    src = """
        class D:
            def f(self, assoc):
                self._transition(assoc, HipState.I1_SENT,
                                 expect_from=(HipState.CLOSED,))
    """
    [finding] = findings(src, "CONF001")
    assert "CLOSED -> I1_SENT" in finding.message


def test_conf001_fires_on_wrong_initial_state():
    src = """
        class Association:
            state: HipState = HipState.ESTABLISHED
    """
    [finding] = findings(src, "CONF001")
    assert "initial state ESTABLISHED" in finding.message


def test_conf001_fires_on_direct_state_assignment_outside_spec():
    src = """
        class D:
            def f(self, assoc):
                if assoc.state == HipState.CLOSED:
                    assoc.state = HipState.ESTABLISHED
    """
    [finding] = findings(src, "CONF001")
    assert "CLOSED -> ESTABLISHED" in finding.message


def test_conf001_clean_on_spec_edges_and_suppressible():
    assert findings(ALL_HIP_EDGES, "CONF001") == []
    src = """
        class D:
            def f(self, assoc):
                self._transition(assoc, HipState.CLOSED)  # repro: ignore[CONF001] -- test fixture
    """
    assert findings(src, "CONF001") == []


def test_conf001_does_not_bind_outside_machine_modules():
    src = """
        class D:
            def f(self, assoc):
                self._transition(assoc, HipState.I1_SENT,
                                 expect_from=(HipState.CLOSED,))
    """
    assert findings(src, "CONF001", path="src/repro/sim/engine.py") == []


# ------------------------------------------------------------------ CONF002 --


def test_conf002_fires_on_missing_spec_edges():
    src = """
        class D:
            def f(self, assoc):
                self._transition(assoc, HipState.I1_SENT,
                                 expect_from=(HipState.UNASSOCIATED,))
    """
    missing = findings(src, "CONF002")
    assert len(missing) == len(HIP_SPEC.edges) - 1
    assert any("CLOSING -> CLOSED" in f.message for f in missing)


def test_conf002_clean_when_every_edge_has_a_handler():
    assert findings(ALL_HIP_EDGES, "CONF002") == []


# ------------------------------------------------------------------ CONF003 --


def test_conf003_fires_on_literal_outside_canonical_set():
    src = """
        class D:
            def f(self, assoc):
                if assoc.state == "ESTABLISHD":
                    pass
    """
    [finding] = findings(src, "CONF003")
    assert "outside the canonical" in finding.message


def test_conf003_fires_on_bare_canonical_literal():
    src = """
        class D:
            def f(self, assoc):
                if assoc.state == "ESTABLISHED":
                    pass
    """
    [finding] = findings(src, "CONF003")
    assert "HipState.ESTABLISHED" in finding.message


def test_conf003_fires_on_literal_in_transition_and_unknown_member():
    src = """
        class D:
            def f(self, assoc):
                self._transition(assoc, "CLOSING",
                                 expect_from=(HipState.ESTABLISHD,))
    """
    messages = [f.message for f in findings(src, "CONF003")]
    assert any("'CLOSING'" in m for m in messages)
    assert any("ESTABLISHD is not a canonical member" in m for m in messages)


def test_conf003_fires_on_reversed_operand_literal():
    src = """
        class D:
            def f(self, assoc):
                if "CLOSING" == assoc.state:
                    pass
    """
    assert len(findings(src, "CONF003")) == 1


def test_conf003_clean_on_enum_members():
    src = """
        class D:
            def f(self, assoc):
                if assoc.state in (HipState.ESTABLISHED, HipState.CLOSING):
                    pass
    """
    assert findings(src, "CONF003") == []


# ------------------------------------------------------------ guard inference --


def test_guard_inference_shapes():
    src = textwrap.dedent(
        """
        class D:
            def none_or_ne(self, assoc):
                if assoc is None or assoc.state != HipState.I1_SENT:
                    return
                self._transition(assoc, HipState.I2_SENT)

            def not_in(self, assoc):
                if assoc.state not in (HipState.ESTABLISHED, HipState.CLOSING):
                    return
                self._transition(assoc, HipState.CLOSED)

            def while_eq(self, assoc):
                while assoc.state == HipState.I1_SENT:
                    self._transition(assoc, HipState.FAILED)

            def alias(self, assoc):
                if not assoc.is_established:
                    return
                self._transition(assoc, HipState.CLOSING)

            def positive_if(self, assoc):
                if assoc.state == HipState.UNASSOCIATED:
                    self._transition(assoc, HipState.I1_SENT)
        """
    )
    ctx = ModuleContext(path=HIP_PATH, source=src, tree=ast.parse(src))
    extracted = extract(ctx)
    assert set(extracted.edges) == {
        ("I1_SENT", "I2_SENT"),
        ("ESTABLISHED", "CLOSED"),
        ("CLOSING", "CLOSED"),
        ("I1_SENT", "FAILED"),
        ("ESTABLISHED", "CLOSING"),
        ("UNASSOCIATED", "I1_SENT"),
    }
    assert extracted.unknown_sources == []


def test_rebinding_invalidates_guard_facts():
    src = textwrap.dedent(
        """
        class D:
            def f(self, assoc):
                if assoc.state != HipState.I1_SENT:
                    return
                assoc = self.other()
                self._transition(assoc, HipState.I2_SENT)
        """
    )
    ctx = ModuleContext(path=HIP_PATH, source=src, tree=ast.parse(src))
    extracted = extract(ctx)
    assert extracted.edges == {}
    assert len(extracted.unknown_sources) == 1


# --------------------------------------------------------------- acceptance --


def test_spec_tables_match_live_enums():
    from repro.hip.daemon import HipState
    from repro.tls.vpn import TunnelState

    assert {(m.name, m.value) for m in HipState} == set(HIP_SPEC.members)
    assert {(m.name, m.value) for m in TunnelState} == set(VPN_SPEC.members)
    for spec in SPECS:
        names = spec.member_names
        assert spec.initial in names
        for frm, to in spec.edges:
            assert frm in names and to in names


def test_spec_for_resolves_machine_modules():
    assert spec_for(HIP_PATH) is HIP_SPEC
    assert spec_for(VPN_PATH) is VPN_SPEC
    assert spec_for("src/repro/hip/esp.py") is None


@pytest.mark.parametrize(
    "path, spec",
    [(HIP_PATH, HIP_SPEC), (VPN_PATH, VPN_SPEC)],
    ids=["hip", "vpn"],
)
def test_extracted_graph_matches_spec_exactly(path, spec):
    """Acceptance criterion: the graph extracted from the shipped module
    equals the declarative RFC table — no extra edges, no missing edges,
    nothing statically undeterminable, no bare literals."""
    extracted = _extract(path)
    assert set(extracted.edges) == set(spec.edges)
    assert extracted.unknown_sources == []
    assert extracted.bad_literals == []
    assert extracted.bad_members == []
    assert extracted.bad_initials == []
