"""ESP data-plane tests: real crypto, BEET vs tunnel, anti-replay."""

import pytest

from repro.hip.esp import (
    EspCiphertext,
    EspError,
    EspMode,
    SecurityAssociation,
    canonical_packet_bytes,
    derive_sa_pair,
)
from repro.net.addresses import ipv4, ipv6
from repro.net.packet import IPHeader, Packet, TCPHeader, UDPHeader, VirtualPayload

HIT_A = ipv6("2001:10::a")
HIT_B = ipv6("2001:10::b")
ENC = bytes(range(16))
AUTH = bytes(range(20))


def make_sa(mode=EspMode.BEET, encrypt=True, spi=0x1000):
    return SecurityAssociation(
        spi=spi, enc_key=ENC, auth_key=AUTH,
        src_hit=HIT_A, dst_hit=HIT_B, mode=mode, encrypt=encrypt,
    )


def sample_inner(payload=b"application data"):
    return Packet(
        headers=(
            IPHeader(src=ipv4("1.0.0.1"), dst=ipv4("1.0.0.2"), proto="tcp"),
            TCPHeader(src_port=1000, dst_port=80, seq=5, ack=6),
        ),
        payload=payload,
    )


class TestProtectVerify:
    def test_real_roundtrip(self):
        out_sa, in_sa = make_sa(), make_sa()
        inner = sample_inner()
        header, ct = out_sa.protect(inner)
        assert ct.ciphertext is not None  # real bytes were encrypted
        recovered = in_sa.verify(header, ct)
        assert recovered is inner

    def test_ciphertext_differs_from_plaintext(self):
        sa = make_sa()
        inner = sample_inner(b"super secret payload!")
        _, ct = sa.protect(inner)
        assert b"super secret payload!" not in ct.ciphertext

    def test_tampered_ciphertext_rejected(self):
        out_sa, in_sa = make_sa(), make_sa()
        header, ct = out_sa.protect(sample_inner())
        bad = EspCiphertext(
            inner=ct.inner, wire_len=ct.wire_len,
            ciphertext=ct.ciphertext[:-1] + bytes([ct.ciphertext[-1] ^ 1]),
            icv=ct.icv, iv=ct.iv,
        )
        with pytest.raises(EspError, match="ICV"):
            in_sa.verify(header, bad)
        assert in_sa.auth_failures == 1

    def test_wrong_key_rejected(self):
        out_sa = make_sa()
        wrong = SecurityAssociation(
            spi=0x1000, enc_key=bytes(16), auth_key=AUTH,
            src_hit=HIT_A, dst_hit=HIT_B,
        )
        header, ct = out_sa.protect(sample_inner())
        with pytest.raises(EspError):
            wrong.verify(header, ct)

    def test_wrong_auth_key_rejected(self):
        out_sa = make_sa()
        wrong = SecurityAssociation(
            spi=0x1000, enc_key=ENC, auth_key=bytes(20),
            src_hit=HIT_A, dst_hit=HIT_B,
        )
        header, ct = out_sa.protect(sample_inner())
        with pytest.raises(EspError, match="ICV"):
            wrong.verify(header, ct)

    def test_spi_mismatch_rejected(self):
        out_sa = make_sa(spi=0x1000)
        other = make_sa(spi=0x2000)
        header, ct = out_sa.protect(sample_inner())
        with pytest.raises(EspError, match="SPI"):
            other.verify(header, ct)

    def test_virtual_payload_fast_path(self):
        out_sa, in_sa = make_sa(), make_sa()
        inner = sample_inner(VirtualPayload(5000))
        header, ct = out_sa.protect(inner)
        assert ct.ciphertext is None
        assert in_sa.verify(header, ct) is inner

    def test_key_length_validation(self):
        with pytest.raises(ValueError):
            SecurityAssociation(spi=1, enc_key=bytes(8), auth_key=AUTH,
                                src_hit=HIT_A, dst_hit=HIT_B)
        with pytest.raises(ValueError):
            SecurityAssociation(spi=1, enc_key=ENC, auth_key=bytes(8),
                                src_hit=HIT_A, dst_hit=HIT_B)


class TestModes:
    def test_beet_strips_inner_ip_header(self):
        """BEET saves the inner IP header bytes on the wire."""
        beet = make_sa(EspMode.BEET)
        tunnel = make_sa(EspMode.TUNNEL)
        inner = sample_inner(b"x" * 100)
        h_beet, ct_beet = beet.protect(inner)
        h_tun, ct_tun = tunnel.protect(inner)
        beet_total = h_beet.header_len + len(ct_beet)
        tun_total = h_tun.header_len + len(ct_tun)
        # Tunnel mode carries the 20-byte inner IPv4 header (modulo padding).
        assert tun_total - beet_total >= 12
        assert len(ct_tun) - len(ct_beet) == 20

    def test_beet_bandwidth_overhead_modest(self):
        sa = make_sa(EspMode.BEET)
        inner = sample_inner(b"y" * 1400)
        overhead = sa.overhead_bytes(inner)
        assert 12 <= overhead < 80  # ESP fields minus the stripped IP header

    def test_auth_only_sa_skips_iv_and_padding(self):
        sa = make_sa(encrypt=False)
        header, ct = sa.protect(sample_inner(b"z" * 64))
        assert header.iv_len == 0
        assert header.pad_len == 0
        assert ct.ciphertext is None  # no encryption performed


class TestAntiReplay:
    def test_duplicate_sequence_rejected(self):
        out_sa, in_sa = make_sa(), make_sa()
        header, ct = out_sa.protect(sample_inner())
        in_sa.verify(header, ct)
        with pytest.raises(EspError, match="replay"):
            in_sa.verify(header, ct)
        assert in_sa.replay_drops == 1

    def test_out_of_order_within_window_accepted(self):
        out_sa, in_sa = make_sa(), make_sa()
        packets = [out_sa.protect(sample_inner(bytes([i]) * 4)) for i in range(5)]
        # Deliver 0, 3, 1, 4, 2 — all inside the window.
        for idx in (0, 3, 1, 4, 2):
            in_sa.verify(*packets[idx])
        assert in_sa.packets_verified == 5

    def test_below_window_rejected(self):
        out_sa, in_sa = make_sa(), make_sa()
        packets = [out_sa.protect(sample_inner(b"abcd")) for _ in range(100)]
        in_sa.verify(*packets[99])  # jump far ahead
        with pytest.raises(EspError, match="window"):
            in_sa.verify(*packets[0])

    def test_sequence_increments(self):
        sa = make_sa()
        h1, _ = sa.protect(sample_inner())
        h2, _ = sa.protect(sample_inner())
        assert h2.seq == h1.seq + 1

    def test_zero_sequence_rejected(self):
        in_sa = make_sa()
        from repro.net.packet import ESPHeader

        header = ESPHeader(spi=0x1000, seq=0)
        with pytest.raises(EspError):
            in_sa.verify(header, EspCiphertext(inner=sample_inner(), wire_len=10))

    def test_first_packet_has_seq_one(self):
        out_sa, in_sa = make_sa(), make_sa()
        header, ct = out_sa.protect(sample_inner())
        assert header.seq == 1  # the counter pre-increments from 0
        in_sa.verify(header, ct)
        assert in_sa._replay_top == 1

    def test_duplicate_at_window_edge_rejected(self):
        """seq 1 is still tracked (offset 63) once the window tops at 64."""
        out_sa, in_sa = make_sa(), make_sa()
        packets = [out_sa.protect(sample_inner(bytes([i]) * 4)) for i in range(64)]
        in_sa.verify(*packets[0])  # seq 1
        in_sa.verify(*packets[63])  # seq 64 -> window covers [1, 64]
        with pytest.raises(EspError, match="replayed"):
            in_sa.verify(*packets[0])
        assert in_sa.replay_drops == 1

    def test_far_jump_advances_window_top(self):
        out_sa, in_sa = make_sa(), make_sa()
        packets = [out_sa.protect(sample_inner(b"wxyz")) for _ in range(300)]
        in_sa.verify(*packets[0])
        in_sa.verify(*packets[299])  # seq 300, far beyond the 64-wide window
        assert in_sa._replay_top == 300
        # A late packet just inside the shifted window is still accepted...
        in_sa.verify(*packets[249])  # seq 250, offset 50
        # ...while one the jump pushed below it is not.
        with pytest.raises(EspError, match="below replay window"):
            in_sa.verify(*packets[199])  # seq 200, offset 100
        assert in_sa.packets_verified == 3

    def test_late_packet_below_window_rejected_and_counted(self):
        out_sa, in_sa = make_sa(), make_sa()
        packets = [out_sa.protect(sample_inner(b"late")) for _ in range(70)]
        in_sa.verify(*packets[69])  # seq 70: window floor is 7
        with pytest.raises(EspError, match="below replay window"):
            in_sa.verify(*packets[5])  # seq 6, offset 64 == window size
        in_sa.verify(*packets[6])  # seq 7, offset 63: last seq still inside
        assert in_sa.replay_drops == 1


class TestKeymatSplit:
    def test_initiator_responder_keys_mirror(self):
        keymat = bytes(range(72)) + bytes(72)
        i_out, i_in = derive_sa_pair(
            keymat, spi_out=2, spi_in=1, local_hit=HIT_A, peer_hit=HIT_B,
            is_initiator=True,
        )
        r_out, r_in = derive_sa_pair(
            keymat, spi_out=1, spi_in=2, local_hit=HIT_B, peer_hit=HIT_A,
            is_initiator=False,
        )
        assert i_out.enc_key == r_in.enc_key
        assert i_out.auth_key == r_in.auth_key
        assert i_in.enc_key == r_out.enc_key

    def test_mirrored_sas_interoperate(self):
        keymat = bytes(range(100, 172)) + bytes(72)
        i_out, i_in = derive_sa_pair(
            keymat, spi_out=2, spi_in=1, local_hit=HIT_A, peer_hit=HIT_B,
            is_initiator=True,
        )
        r_out, r_in = derive_sa_pair(
            keymat, spi_out=1, spi_in=2, local_hit=HIT_B, peer_hit=HIT_A,
            is_initiator=False,
        )
        inner = sample_inner(b"ping")
        assert r_in.verify(*i_out.protect(inner)) is inner
        back = sample_inner(b"pong")
        assert i_in.verify(*r_out.protect(back)) is back

    def test_short_keymat_rejected(self):
        with pytest.raises(ValueError):
            derive_sa_pair(bytes(10), 1, 2, HIT_A, HIT_B, True)


class TestCanonicalBytes:
    def test_covers_all_header_types(self):
        from repro.net.packet import ICMPHeader

        for headers in (
            (UDPHeader(src_port=1, dst_port=2),),
            (TCPHeader(src_port=1, dst_port=2),),
            (ICMPHeader(kind="echo-request", ident=1, seq=2),),
            (IPHeader(src=ipv4("1.2.3.4"), dst=ipv4("5.6.7.8"), proto="udp"),),
        ):
            data = canonical_packet_bytes(Packet(headers=headers, payload=b"x"))
            assert isinstance(data, bytes) and len(data) > 1

    def test_virtual_payload_returns_none(self):
        pkt = Packet(headers=(), payload=VirtualPayload(10))
        assert canonical_packet_bytes(pkt) is None

    def test_distinct_headers_distinct_bytes(self):
        p1 = Packet(headers=(TCPHeader(src_port=1, dst_port=2, seq=9),), payload=b"")
        p2 = Packet(headers=(TCPHeader(src_port=1, dst_port=2, seq=10),), payload=b"")
        assert canonical_packet_bytes(p1) != canonical_packet_bytes(p2)
