"""Hot-path discipline tests (PERF001/PERF002).

The hot region is everything reachable from the fast-lane dispatch roots
(``LinkEndpoint.send``, ``TcpConnection._fluid_advance``, ...).  PERF001
flags per-event allocation (dict/closure/f-string/str.format) inside it;
PERF002 flags observability name-lookups (logging/print/METRICS) on the
same paths.  Cold regions — branches ending in ``raise``, ``.enabled``
gates, unreached methods, tooling modules — must stay silent.
"""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_source

LINK_PATH = "src/repro/net/link.py"


def findings(source: str, rule: str, path: str = LINK_PATH) -> list:
    return [
        f
        for f in analyze_source(textwrap.dedent(source), path, rules={rule})
        if not f.suppressed and f.rule == rule
    ]


# ------------------------------------------------------------------ PERF001 --


def test_perf001_dict_literal_in_root():
    src = """
        class LinkEndpoint:
            def send(self, pkt):
                entry = {"pkt": pkt, "ts": 0}
                return entry
    """
    [finding] = findings(src, "PERF001")
    assert "LinkEndpoint.send" in finding.message


def test_perf001_fstring_in_root():
    src = """
        class LinkEndpoint:
            def send(self, pkt):
                key = f"link.{pkt.kind}"
                return key
    """
    assert findings(src, "PERF001")


def test_perf001_str_format_in_root():
    src = """
        class LinkEndpoint:
            def send(self, pkt):
                key = "link.{}".format(pkt.kind)
                return key
    """
    [finding] = findings(src, "PERF001")
    assert "str.format" in finding.message


def test_perf001_closure_in_root():
    src = """
        class LinkEndpoint:
            def send(self, pkt):
                cb = lambda: pkt
                return cb
    """
    assert findings(src, "PERF001")


def test_perf001_allocation_in_transitively_reached_helper():
    src = """
        class LinkEndpoint:
            def send(self, pkt):
                return self._emit(pkt)

            def _emit(self, pkt):
                entry = {"pkt": pkt}
                return entry
    """
    [finding] = findings(src, "PERF001")
    assert finding.line == 7


def test_perf001_negative_cold_raise_branch():
    """A branch that ends in ``raise`` is the error path, not the fast
    path — allocating the exception detail there is fine."""
    src = """
        class LinkEndpoint:
            def send(self, pkt):
                if pkt is None:
                    detail = {"reason": "no packet"}
                    raise ValueError(detail)
                return pkt
    """
    assert not findings(src, "PERF001")


def test_perf001_negative_enabled_gate():
    src = """
        class LinkEndpoint:
            def send(self, pkt):
                if TRACE.enabled:
                    entry = {"pkt": pkt}
                    TRACE.push(entry)
                return pkt
    """
    assert not findings(src, "PERF001")


def test_perf001_negative_method_not_reachable_from_roots():
    src = """
        class Reporter:
            def summarize(self):
                return {"a": 1}
    """
    assert not findings(src, "PERF001")


# ------------------------------------------------------------------ PERF002 --


def test_perf002_metrics_lookup_in_root():
    src = """
        class LinkEndpoint:
            def send(self, pkt):
                METRICS.counter("link.tx")
                return pkt
    """
    assert findings(src, "PERF002")


def test_perf002_print_in_root():
    src = """
        class LinkEndpoint:
            def send(self, pkt):
                print("tx", pkt)
                return pkt
    """
    assert findings(src, "PERF002")


def test_perf002_logging_in_transitively_reached_helper():
    src = """
        import logging

        class LinkEndpoint:
            def send(self, pkt):
                return self._emit(pkt)

            def _emit(self, pkt):
                logging.info("tx %s", pkt)
                return pkt
    """
    [finding] = findings(src, "PERF002")
    assert finding.line == 9


def test_perf002_negative_enabled_gate():
    src = """
        class LinkEndpoint:
            def send(self, pkt):
                if TRACE.enabled:
                    print("tx", pkt)
                return pkt
    """
    assert not findings(src, "PERF002")


def test_perf002_negative_unreached_method():
    src = """
        class Reporter:
            def summarize(self):
                print("summary")
    """
    assert not findings(src, "PERF002")


# ------------------------------------------------------------------- scope --


def test_perf_rules_skip_tooling_modules():
    """The analysis package itself is offline tooling; opaque CHA edges
    into it must not drag it into the hot closure."""
    src = """
        class LinkEndpoint:
            def send(self, pkt):
                entry = {"pkt": pkt}
                METRICS.counter("x")
                return entry
    """
    for rule in ("PERF001", "PERF002"):
        assert not findings(src, rule, path="src/repro/analysis/fake.py")
