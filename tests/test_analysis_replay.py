"""Replay-sanitizer tests.

The sanitizer must (a) certify a genuinely deterministic scenario, (b) fire
on the dynamic residue the static rules cannot see — here an artificially
injected wall-clock-seeded draw — and (c) leave the global recorder the way
it found it.  The smoke test runs the real RUBiS deployment twice under one
seed and demands digest equality end to end.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.analysis.replay import (
    assert_replay_deterministic,
    canonical_event,
    check_replay,
    record_run,
)
from repro.metrics import METRICS, RECORDER
from repro.metrics.recorder import TraceEvent


def deterministic_scenario():
    rng = random.Random(1234)
    for i in range(50):
        RECORDER.record(i * 0.1, "test", "draw", value=rng.random(), seq=i)


def clock_seeded_scenario():
    # The exact failure mode the sanitizer exists to catch: a draw whose
    # seed depends on the host clock, invisible to AST rules when smuggled
    # through a variable.
    rng = random.Random(time.time_ns())
    for i in range(50):
        RECORDER.record(i * 0.1, "test", "draw", value=rng.random(), seq=i)


def test_deterministic_scenario_passes():
    report = check_replay(deterministic_scenario)
    assert report.deterministic
    assert report.runs[0].digest == report.runs[1].digest
    assert report.runs[0].n_events == 50
    assert report.runs[0].tally == {"test.draw": 50}
    assert report.first_divergence is None
    assert "deterministic" in report.describe()


def test_clock_seeded_draw_is_detected():
    report = check_replay(clock_seeded_scenario)
    assert not report.deterministic
    index, ev_a, ev_b = report.first_divergence
    assert index == 0 and ev_a != ev_b
    assert "divergence" in report.describe()
    with pytest.raises(AssertionError, match="divergence"):
        assert_replay_deterministic(clock_seeded_scenario)


def test_divergent_event_count_is_reported():
    flip = []

    def scenario():
        flip.append(None)
        for i in range(len(flip)):
            RECORDER.record(0.0, "test", "tick", n=i)

    report = check_replay(scenario)
    assert not report.deterministic
    assert report.runs[0].n_events == 1 and report.runs[1].n_events == 2
    assert "1 vs 2 events" in report.describe()


def test_counters_divergence_is_detected_even_with_identical_trace():
    flip = []

    def scenario():
        flip.append(None)
        METRICS.counter("test.replay_runs").inc(len(flip))

    report = check_replay(scenario)
    assert not report.deterministic
    assert report.runs[0].digest == report.runs[1].digest
    assert report.runs[0].counters_digest != report.runs[1].counters_digest


def test_record_run_digests_past_ring_eviction():
    """Events evicted from the ring still contribute to the digest."""

    def scenario():
        for i in range(RECORDER.capacity + 100):
            RECORDER.record(0.0, "test", "tick", n=i)

    run = record_run(scenario, keep_events=False)
    assert run.n_events == RECORDER.capacity + 100
    assert run.events == []


def test_recorder_state_restored_after_run():
    RECORDER.disable()
    RECORDER.sink = None
    record_run(deterministic_scenario)
    assert RECORDER.enabled is False
    assert RECORDER.sink is None


def test_canonical_event_is_key_order_independent():
    a = canonical_event(TraceEvent(1.0, "l", "e", {"x": 1, "y": 2}))
    b = canonical_event(TraceEvent(1.0, "l", "e", {"y": 2, "x": 1}))
    assert a == b


@pytest.mark.smoke
def test_smoke_rubis_replay_is_deterministic():
    """One second of closed-loop RUBiS load, twice, same seed: the full
    flight-recorder stream and the final counters must digest identically."""
    from repro.apps.workload import ClosedLoopClients
    from repro.scenarios.rubis_cloud import FRONTEND_PORT, build_rubis_cloud

    def scenario():
        dep = build_rubis_cloud(seed=7, security="basic", n_web=1, extra_tenants=0)
        clients = ClosedLoopClients(
            dep.client_node, dep.client_tcp, dep.frontend_addr, FRONTEND_PORT,
            n_clients=2, rng=dep.rngs.stream("replay-smoke"),
            timeout=2.0, warmup=0.2,
        )
        proc = dep.sim.process(clients.run(1.0))
        result = dep.sim.run(until=proc)
        assert result.successes > 0
        # Finalize abandoned server handlers at a deterministic point; left
        # to the GC they would emit FINs mid-*next*-run at arbitrary times.
        dep.sim.close()

    report = assert_replay_deterministic(scenario)
    assert report.runs[0].n_events > 100  # the tap really saw the run
