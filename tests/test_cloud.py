"""Cloud substrate tests: instance types, placement, datacenter, providers."""

import pytest

from repro.cloud.datacenter import Datacenter, DatacenterParams, Internet
from repro.cloud.hypervisor import CapacityError, PhysicalHost
from repro.cloud.iaas import PrivateCloud, PublicCloud
from repro.cloud.tenant import (
    PackPlacement,
    SpreadPlacement,
    Tenant,
    TenantAffinityPlacement,
)
from repro.cloud.vm import INSTANCE_TYPES, VirtualMachine
from repro.net.addresses import ipv4, prefix
from repro.net.icmp import IcmpStack, ping
from repro.sim import Simulator


class TestInstanceTypes:
    def test_catalog(self):
        assert "t1.micro" in INSTANCE_TYPES and "m1.large" in INSTANCE_TYPES
        micro = INSTANCE_TYPES["t1.micro"]
        large = INSTANCE_TYPES["m1.large"]
        assert micro.memory_mb == 613  # the paper's number
        assert large.memory_mb == 7680
        # micro is slower per unit work than large.
        assert micro.cpu_scale > large.cpu_scale

    def test_vm_inherits_cpu_model(self, sim):
        vm = VirtualMachine(sim, "v", INSTANCE_TYPES["m1.large"], Tenant("t"))
        assert vm.cpu.capacity == 2
        assert vm.cpu_scale == 0.9


class TestPhysicalHost:
    def test_attach_assigns_address_and_routes(self, sim):
        host = PhysicalHost(sim, "h", guest_subnet=prefix("10.0.1.0/24"))
        vm = VirtualMachine(sim, "v", INSTANCE_TYPES["t1.micro"], Tenant("t"))
        addr = host.attach_vm(vm)
        assert prefix("10.0.1.0/24").contains(addr)
        assert vm.state == "running"
        assert vm.host is host
        assert vm.primary_address == addr

    def test_memory_capacity_enforced(self, sim):
        host = PhysicalHost(sim, "h", guest_subnet=prefix("10.0.1.0/24"),
                            memory_mb=1000)
        t = Tenant("t")
        host.attach_vm(VirtualMachine(sim, "v1", INSTANCE_TYPES["t1.micro"], t))
        with pytest.raises(CapacityError):
            host.attach_vm(VirtualMachine(sim, "v2", INSTANCE_TYPES["m1.large"], t))

    def test_detach_releases_resources(self, sim):
        host = PhysicalHost(sim, "h", guest_subnet=prefix("10.0.1.0/24"))
        vm = VirtualMachine(sim, "v", INSTANCE_TYPES["t1.micro"], Tenant("t"))
        addr = host.attach_vm(vm)
        used = host.memory_used_mb
        host.detach_vm(vm)
        assert host.memory_used_mb == used - 613
        assert vm.host is None
        assert host.routes.lookup(addr) is None

    def test_vm_to_vm_on_same_host(self, sim, drive):
        host = PhysicalHost(sim, "h", guest_subnet=prefix("10.0.1.0/24"))
        t = Tenant("t")
        vm1 = VirtualMachine(sim, "v1", INSTANCE_TYPES["t1.micro"], t)
        vm2 = VirtualMachine(sim, "v2", INSTANCE_TYPES["t1.micro"], t)
        host.attach_vm(vm1)
        addr2 = host.attach_vm(vm2)
        icmp1, _ = IcmpStack(vm1), IcmpStack(vm2)
        rtts = drive(sim, ping(icmp1, addr2, count=2, interval=0.01))
        assert all(r is not None for r in rtts)

    def test_tenants_tracked(self, sim):
        host = PhysicalHost(sim, "h", guest_subnet=prefix("10.0.1.0/24"))
        host.attach_vm(VirtualMachine(sim, "v1", INSTANCE_TYPES["t1.micro"],
                                      Tenant("acme")))
        host.attach_vm(VirtualMachine(sim, "v2", INSTANCE_TYPES["t1.micro"],
                                      Tenant("rival")))
        assert host.tenants() == {"acme", "rival"}


class TestPlacement:
    def _hosts(self, sim, n=3):
        return [
            PhysicalHost(sim, f"h{i}", guest_subnet=prefix(f"10.0.{i + 1}.0/24"),
                         memory_mb=2000)
            for i in range(n)
        ]

    def test_pack_fills_first_host(self, sim):
        hosts = self._hosts(sim)
        policy = PackPlacement()
        t = Tenant("t")
        for i in range(3):
            vm = VirtualMachine(sim, f"v{i}", INSTANCE_TYPES["t1.micro"], t)
            host = policy.place(vm, hosts)
            host.attach_vm(vm)
        assert len(hosts[0].vms) == 3
        assert len(hosts[1].vms) == 0

    def test_spread_balances(self, sim):
        hosts = self._hosts(sim)
        policy = SpreadPlacement()
        t = Tenant("t")
        for i in range(3):
            vm = VirtualMachine(sim, f"v{i}", INSTANCE_TYPES["t1.micro"], t)
            policy.place(vm, hosts).attach_vm(vm)
        assert [len(h.vms) for h in hosts] == [1, 1, 1]

    def test_affinity_groups_tenant(self, sim):
        hosts = self._hosts(sim)
        policy = TenantAffinityPlacement()
        acme, rival = Tenant("acme"), Tenant("rival")
        placed = {}
        for i, tenant in enumerate((acme, rival, acme)):
            vm = VirtualMachine(sim, f"v{i}", INSTANCE_TYPES["t1.micro"], tenant)
            host = policy.place(vm, hosts)
            host.attach_vm(vm)
            placed[f"v{i}"] = host.name
        assert placed["v0"] == placed["v2"]  # acme grouped together
        assert placed["v1"] != placed["v0"]  # rival spread elsewhere

    def test_placement_capacity_error(self, sim):
        hosts = self._hosts(sim, n=1)
        hosts[0].memory_used_mb = hosts[0].memory_mb
        vm = VirtualMachine(sim, "v", INSTANCE_TYPES["t1.micro"], Tenant("t"))
        with pytest.raises(CapacityError):
            PackPlacement().place(vm, hosts)
        with pytest.raises(CapacityError):
            SpreadPlacement().place(vm, hosts)


class TestDatacenterAndProviders:
    def test_datacenter_topology_counts(self, sim):
        dc = Datacenter(sim, "dc", DatacenterParams(n_racks=2, hosts_per_rack=3))
        assert len(dc.tors) == 2
        assert len(dc.hosts) == 6

    def test_cross_rack_connectivity(self, sim, drive):
        dc = Datacenter(sim, "dc", DatacenterParams(n_racks=2, hosts_per_rack=1))
        t = Tenant("t")
        vm1 = VirtualMachine(sim, "v1", INSTANCE_TYPES["t1.micro"], t)
        vm2 = VirtualMachine(sim, "v2", INSTANCE_TYPES["t1.micro"], t)
        dc.hosts[0].attach_vm(vm1)
        addr2 = dc.hosts[1].attach_vm(vm2)  # other rack
        icmp1, _ = IcmpStack(vm1), IcmpStack(vm2)
        rtts = drive(sim, ping(icmp1, addr2, count=2, interval=0.01))
        assert all(r is not None for r in rtts)

    def test_public_cloud_launch_and_colocation(self, sim):
        cloud = PublicCloud(sim)
        acme, rival = Tenant("acme"), Tenant("rival")
        vm1 = cloud.launch(acme, "t1.micro")
        vm2 = cloud.launch(rival, "t1.micro")
        # Packing placement co-locates competing tenants: the threat model.
        assert vm1.host is vm2.host
        assert {"acme", "rival"} in cloud.colocated_tenants()

    def test_private_cloud_spreads(self, sim):
        cloud = PrivateCloud(sim)
        org = Tenant("org")
        vms = [cloud.launch(org, "t1.micro") for _ in range(3)]
        hosts = {vm.host.name for vm in vms}
        assert len(hosts) == 3

    def test_unknown_instance_type(self, sim):
        cloud = PublicCloud(sim)
        with pytest.raises(ValueError):
            cloud.launch(Tenant("t"), "z9.mega")

    def test_terminate(self, sim):
        cloud = PublicCloud(sim)
        vm = cloud.launch(Tenant("t"), "t1.micro")
        cloud.terminate(vm)
        assert vm.state == "terminated"
        assert vm not in cloud.instances

    def test_internet_attachment_end_to_end(self, sim, drive):
        cloud = PublicCloud(sim)
        internet = Internet(sim)
        cloud.datacenter.attach_gateway(
            internet.router, gateway_addr=ipv4("203.0.113.2"),
            core_addr=ipv4("203.0.113.1"), delay_s=5e-3,
        )
        from repro.net.node import Node

        external = Node(sim, "laptop")
        internet.attach(external, ipv4("192.0.2.10"), delay_s=5e-3)
        vm = cloud.launch(Tenant("t"), "t1.micro")
        icmp_ext, _ = IcmpStack(external), IcmpStack(vm)
        rtts = drive(sim, ping(icmp_ext, vm.primary_address, count=2,
                               interval=0.01, timeout=2.0))
        assert all(r is not None for r in rtts)
        # WAN path: at least 2 x (5 + 5) ms.
        assert min(rtts) > 0.02
