"""Teredo relay: native-IPv6 hosts reaching Teredo clients through a relay."""

import pytest

from repro.net.addresses import ipv4, ipv6, prefix
from repro.net.icmp import IcmpStack, ping
from repro.net.node import Node
from repro.net.teredo import (
    TeredoClient,
    TeredoRelay,
    TeredoServer,
    install_relay_forwarding,
)
from repro.net.topology import wire
from repro.net.udp import UdpStack


@pytest.fixture
def relay_net(sim):
    """v6host --(v6)-- relay/router --(v4)-- {teredo server, teredo client}."""
    v6host = Node(sim, "v6host")
    router = Node(sim, "router", forwarding=True)
    server = Node(sim, "teredo-server")
    client = Node(sim, "client")

    # Native IPv6 island between v6host and the router.
    h6, r6, _ = wire(sim, v6host, router, addr_a=ipv6("2001:db8::10"),
                     delay_s=1e-3)
    r6.add_address(ipv6("2001:db8::1"))
    v6host.routes.add(prefix("::/0"), h6)
    router.routes.add(prefix("2001:db8::/64"), r6)

    # IPv4 side.
    rs, s4, _ = wire(sim, router, server, addr_b=ipv4("203.0.113.1"), delay_s=2e-3)
    rc, c4, _ = wire(sim, router, client, addr_b=ipv4("203.0.113.9"), delay_s=2e-3)
    rs.add_address(ipv4("203.0.113.254"))
    router.routes.add(prefix("203.0.113.1/32"), rs)
    router.routes.add(prefix("203.0.113.9/32"), rc)
    server.routes.add(prefix("0.0.0.0/0"), s4)
    client.routes.add(prefix("0.0.0.0/0"), c4)

    TeredoServer(server, UdpStack(server))
    relay = TeredoRelay(router, UdpStack(router))
    install_relay_forwarding(router, relay)
    # Teredo destinations route toward the relay (any v4 iface works: the
    # relay hook intercepts before egress).
    teredo_client = TeredoClient(client, UdpStack(client), ipv4("203.0.113.1"),
                                 relay_v4=ipv4("203.0.113.254"))
    return sim, v6host, router, client, relay, teredo_client


class TestTeredoRelay:
    def test_v6_host_pings_teredo_client_via_relay(self, relay_net, drive):
        sim, v6host, router, client, relay, teredo_client = relay_net
        icmp_v6, _ = IcmpStack(v6host), IcmpStack(client)

        def flow():
            addr = yield sim.process(teredo_client.qualify())
            # Route the Teredo prefix from the v6 island toward the router;
            # the relay hook takes over there.
            rtts = yield sim.process(
                ping(icmp_v6, addr, count=3, interval=0.05, timeout=5.0)
            )
            return rtts

        rtts = drive(sim, flow())
        assert all(r is not None for r in rtts)
        assert relay.relayed >= 3  # outbound legs crossed the relay

    def test_relay_counts_both_directions(self, relay_net, drive):
        sim, v6host, router, client, relay, teredo_client = relay_net
        icmp_v6, _ = IcmpStack(v6host), IcmpStack(client)

        def flow():
            addr = yield sim.process(teredo_client.qualify())
            yield sim.process(ping(icmp_v6, addr, count=2, interval=0.05,
                                   timeout=5.0))
            return relay.relayed

        relayed = drive(sim, flow())
        # Request legs (v6->client) and reply legs (client->v6) both pass.
        assert relayed >= 4
