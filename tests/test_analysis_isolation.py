"""Shard-isolation rule tests (ISO001-ISO004).

Each rule gets seeded-broken fixtures (the rule must fire) and clean twins
(it must not).  The ISO001 positives mirror the *actual* pre-existing bug
the pass was built to catch: ``repro.sim.shard`` incrementing
``repro.net.link``'s module counters, whose writes die with forked shard
workers.
"""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_source

PRODUCT = "src/repro/fake/module.py"
SIM_PATH = "src/repro/sim/fake.py"
ANALYSIS_PATH = "src/repro/analysis/fake.py"
TESTCODE = "tests/test_fake.py"


def findings(source: str, rule: str, path: str = PRODUCT) -> list:
    return [
        f
        for f in analyze_source(textwrap.dedent(source), path, rules={rule})
        if not f.suppressed and f.rule == rule
    ]


# ------------------------------------------------------------------ ISO001 --


def test_iso001_mutator_on_module_list():
    src = """
        _POOL = []

        def release(entry):
            _POOL.append(entry)
    """
    [finding] = findings(src, "ISO001")
    assert "_POOL" in finding.message
    assert "forked" in finding.message


def test_iso001_next_on_module_counter():
    # The shape of net/packet.py's `_packet_ids = itertools.count()`.
    src = """
        import itertools

        _IDS = itertools.count()

        def fresh_id():
            return next(_IDS)
    """
    [finding] = findings(src, "ISO001")
    assert "_IDS" in finding.message


def test_iso001_global_rebinding():
    src = """
        _EPOCH = 0

        def bump():
            global _EPOCH
            _EPOCH += 1
    """
    assert findings(src, "ISO001")


def test_iso001_subscript_write_to_module_dict():
    src = """
        _CACHE = {}

        def remember(key, value):
            _CACHE[key] = value
    """
    [finding] = findings(src, "ISO001")
    assert "_CACHE" in finding.message


def test_iso001_cross_module_attribute_write():
    # The actual shard.py bug: writing through a counter handle
    # from-imported out of repro.net.link.
    src = """
        from repro.net.link import _TX_PACKETS

        def account(n):
            _TX_PACKETS.value += n
    """
    [finding] = findings(src, "ISO001")
    assert "repro.net.link" in finding.message


def test_iso001_cross_module_mutator_call():
    src = """
        from repro.net.link import WIRE_TAPS

        def hook(tap):
            WIRE_TAPS.append(tap)
    """
    [finding] = findings(src, "ISO001")
    assert "WIRE_TAPS" in finding.message


def test_iso001_clean_local_mutation():
    src = """
        def collect(items):
            out = []
            for item in items:
                out.append(item)
            return out
    """
    assert not findings(src, "ISO001")


def test_iso001_clean_import_time_setup():
    # Mutating a module container *at import time* is setup, not runtime
    # sharing.
    src = """
        _TABLE = {}
        for _name in ("a", "b"):
            _TABLE[_name] = len(_name)

        def lookup(name):
            return _TABLE[name]
    """
    assert not findings(src, "ISO001")


def test_iso001_metric_handles_exempt():
    # METRICS get-or-create handles are the sanctioned process-global
    # observability channel.
    src = """
        from repro.metrics import METRICS

        _TX = METRICS.counter("link.tx_packets")

        def account(n):
            _TX.value += n
    """
    assert not findings(src, "ISO001")


def test_iso001_silent_in_analysis_layer():
    src = """
        _POOL = []

        def release(entry):
            _POOL.append(entry)
    """
    assert not findings(src, "ISO001", path=ANALYSIS_PATH)


def test_iso001_silent_in_tests():
    src = """
        _POOL = []

        def release(entry):
            _POOL.append(entry)
    """
    assert not findings(src, "ISO001", path=TESTCODE)


# ------------------------------------------------------------------ ISO002 --


def test_iso002_direct_private_write():
    src = """
        def fast_rearm(sim, when):
            sim._seq += 1
    """
    [finding] = findings(src, "ISO002")
    assert "_seq" in finding.message


def test_iso002_heappush_onto_private_heap():
    src = """
        import heapq

        def schedule(sim, entry):
            heapq.heappush(sim._heap, entry)
    """
    [finding] = findings(src, "ISO002")
    assert "_heap" in finding.message


def test_iso002_via_self_sim_attribute():
    src = """
        class Endpoint:
            def poke(self):
                self.sim._seq += 1
    """
    [finding] = findings(src, "ISO002")
    assert "_seq" in finding.message


def test_iso002_one_finding_per_function():
    src = """
        def fast(sim):
            sim._seq += 1
            sim._now = 0.0
    """
    [finding] = findings(src, "ISO002")
    assert "_now" in finding.message and "_seq" in finding.message


def test_iso002_clean_public_api():
    src = """
        def schedule(sim, delay, fn):
            return sim.call_later(delay, fn)
    """
    assert not findings(src, "ISO002")


def test_iso002_clean_own_private_state():
    src = """
        class Endpoint:
            def __init__(self):
                self._queue = []

            def push(self, item):
                self._queue.append(item)
    """
    assert not findings(src, "ISO002")


def test_iso002_silent_inside_repro_sim():
    # The engine owns the engine: repro/sim may touch its own privates.
    src = """
        def fast_rearm(sim, when):
            sim._seq += 1
    """
    assert not findings(src, "ISO002", path=SIM_PATH)


# ------------------------------------------------------------------ ISO003 --


def test_iso003_class_level_list():
    src = """
        class Router:
            routes = []
    """
    [finding] = findings(src, "ISO003")
    assert "Router.routes" in finding.message


def test_iso003_class_level_dict_constructor():
    src = """
        class Cache:
            entries = dict()
    """
    [finding] = findings(src, "ISO003")
    assert "Cache.entries" in finding.message


def test_iso003_annotated_class_mutable():
    src = """
        class Router:
            routes: list = []
    """
    assert findings(src, "ISO003")


def test_iso003_clean_slots_and_init():
    src = """
        class Router:
            __slots__ = ("routes",)

            def __init__(self):
                self.routes = []
    """
    assert not findings(src, "ISO003")


def test_iso003_clean_dataclass_default_factory():
    src = """
        from dataclasses import dataclass, field

        @dataclass
        class Router:
            routes: list = field(default_factory=list)
    """
    assert not findings(src, "ISO003")


def test_iso003_clean_immutable_class_attrs():
    src = """
        class Router:
            MAX_ROUTES = 64
            NAME = "router"
            KINDS = ("static", "learned")
    """
    assert not findings(src, "ISO003")


# ------------------------------------------------------------------ ISO004 --


def test_iso004_module_level_simulator():
    src = """
        from repro.sim.engine import Simulator

        SIM = Simulator()
    """
    [finding] = findings(src, "ISO004")
    assert "SIM" in finding.message


def test_iso004_simulator_default_argument():
    src = """
        from repro.sim.engine import Simulator

        def build(sim=Simulator()):
            return sim
    """
    [finding] = findings(src, "ISO004")
    assert "default" in finding.message


def test_iso004_function_capturing_global_simulator():
    src = """
        from repro.sim.engine import Simulator

        SIM = Simulator()

        def schedule(delay, fn):
            return SIM.call_later(delay, fn)
    """
    flagged = findings(src, "ISO004")
    # The module-level binding fires, and so does the capture.
    assert any("captures" in f.message for f in flagged)


def test_iso004_clean_per_call_construction():
    src = """
        from repro.sim.engine import Simulator

        def build():
            sim = Simulator()
            return sim
    """
    assert not findings(src, "ISO004")
