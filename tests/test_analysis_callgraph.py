"""Whole-program call graph tests (repro.analysis.callgraph).

Small in-memory programs exercise every resolution strategy the graph
uses — direct calls, aliased imports, self/super method resolution through
the MRO, opaque-receiver CHA, callback references — plus the traversal
helpers the downstream passes depend on (reachable-with-provenance,
callee-first SCCs, changed-module closure).
"""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.base import ModuleContext
from repro.analysis.callgraph import build_program, module_name_of


def program(*modules):
    """Build (index, graph) from (path, source) pairs."""
    ctxs = [
        ModuleContext(path=path, source=textwrap.dedent(src),
                      tree=ast.parse(textwrap.dedent(src)))
        for path, src in modules
    ]
    return build_program(ctxs)


# ------------------------------------------------------------- module names --


def test_module_name_of_package_paths():
    assert module_name_of("src/repro/net/tcp.py") == "repro.net.tcp"
    assert module_name_of("src/repro/__init__.py") == "repro"
    assert module_name_of("tests/test_tcp.py") is None


# ---------------------------------------------------------------- resolution --


def test_direct_module_function_call():
    _, graph = program(("src/repro/m.py", """
        def callee():
            pass

        def caller():
            callee()
    """))
    assert "repro.m.callee" in graph.edges["repro.m.caller"]


def test_cross_module_aliased_import():
    _, graph = program(
        ("src/repro/a.py", """
            def parse(data):
                pass
        """),
        ("src/repro/b.py", """
            from repro.a import parse as parse_wire

            def run():
                parse_wire(b"")
        """),
    )
    assert "repro.a.parse" in graph.edges["repro.b.run"]


def test_self_method_resolves_through_mro():
    _, graph = program(("src/repro/m.py", """
        class Base:
            def step(self):
                pass

        class Derived(Base):
            def run(self):
                self.step()
    """))
    assert "repro.m.Base.step" in graph.edges["repro.m.Derived.run"]


def test_self_method_prefers_override():
    _, graph = program(("src/repro/m.py", """
        class Base:
            def step(self):
                pass

        class Derived(Base):
            def step(self):
                pass

            def run(self):
                self.step()
    """))
    callees = graph.edges["repro.m.Derived.run"]
    assert "repro.m.Derived.step" in callees


def test_opaque_receiver_uses_cha():
    """A call through an untyped receiver fans out to every same-named
    method — the conservative CHA fallback."""
    _, graph = program(("src/repro/m.py", """
        class A:
            def handle(self):
                pass

        class B:
            def handle(self):
                pass

        def dispatch(obj):
            obj.handle()
    """))
    callees = set(graph.edges["repro.m.dispatch"])
    assert {"repro.m.A.handle", "repro.m.B.handle"} <= callees


def test_callback_reference_argument_counts_as_edge():
    _, graph = program(("src/repro/m.py", """
        def on_done():
            pass

        def schedule(cb):
            pass

        def arm():
            schedule(on_done)
    """))
    assert "repro.m.on_done" in graph.edges["repro.m.arm"]


def test_nested_def_is_reached_by_its_definer():
    _, graph = program(("src/repro/m.py", """
        def outer():
            def inner():
                pass
            return inner
    """))
    assert "repro.m.outer.inner" in graph.edges["repro.m.outer"]


def test_call_targets_maps_individual_call_sites():
    source = textwrap.dedent("""
        def callee():
            pass

        def caller():
            callee()
    """)
    ctx = ModuleContext(path="src/repro/m.py", source=source,
                        tree=ast.parse(source))
    _, graph = build_program([ctx])
    calls = [n for n in ast.walk(ctx.tree) if isinstance(n, ast.Call)]
    assert len(calls) == 1
    assert graph.call_targets[id(calls[0])] == ("repro.m.callee",)


# ----------------------------------------------------------------- traversal --


def test_reachable_reports_root_provenance():
    _, graph = program(("src/repro/m.py", """
        class Engine:
            def run(self):
                self.helper()

            def helper(self):
                leaf()

        def leaf():
            pass

        def unrelated():
            pass
    """))
    reached = graph.reachable(("Engine.run",))
    assert reached["repro.m.Engine.run"] == "Engine.run"
    assert reached["repro.m.Engine.helper"] == "Engine.run"
    assert reached["repro.m.leaf"] == "Engine.run"
    assert "repro.m.unrelated" not in reached


def test_sccs_callee_first_with_cycle():
    _, graph = program(("src/repro/m.py", """
        def a():
            b()

        def b():
            a()

        def c():
            a()
    """))
    order = graph.sccs()
    cycle = next(s for s in order if len(s) == 2)
    assert set(cycle) == {"repro.m.a", "repro.m.b"}
    c_pos = next(i for i, s in enumerate(order) if "repro.m.c" in s)
    cycle_pos = order.index(cycle)
    assert cycle_pos < c_pos, "callees must be emitted before their callers"


def test_changed_closure_expands_through_importers():
    index, _ = program(
        ("src/repro/low.py", """
            def f():
                pass
        """),
        ("src/repro/mid.py", """
            from repro.low import f

            def g():
                f()
        """),
        ("src/repro/other.py", """
            def h():
                pass
        """),
    )
    closure = index.changed_closure({"repro.low"})
    assert "repro.low" in closure
    assert "repro.mid" in closure
    assert "repro.other" not in closure
