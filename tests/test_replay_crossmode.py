"""Cross-mode replay equivalence: fast path vs reference engine.

The engine/dataplane fast path (callback-lane timers, cached lookups, fused
packet construction) must be *observationally invisible*: the flight-recorder
event stream of a scenario run on the fast path must digest identically to
the same scenario on the retained reference path (generator processes,
per-packet delivery processes, uncached lookups).  These tests are the
referee for every fast-path optimization — if one reorders, drops, or
duplicates a traced event, the digests split.
"""

import pytest

import repro.sim.engine as engine
from repro.analysis.replay import assert_replay_deterministic, record_run


@pytest.fixture
def each_mode():
    """Yield a runner that records a scenario once per engine mode."""
    saved = engine.DEFAULT_FAST_PATH

    def run_both(scenario):
        runs = {}
        for fast in (False, True):
            engine.DEFAULT_FAST_PATH = fast
            runs[fast] = record_run(scenario, keep_events=False)
        return runs

    try:
        yield run_both
    finally:
        engine.DEFAULT_FAST_PATH = saved


def iperf_scenario():
    from repro.apps.iperf import run_iperf
    from repro.net.tcp import TcpStack
    from repro.net.topology import lan_pair
    from repro.sim.engine import Simulator

    sim = Simulator()
    node_a, node_b = lan_pair(sim)
    tcp_a, tcp_b = TcpStack(node_a), TcpStack(node_b)

    def main():
        result = yield from run_iperf(tcp_b, tcp_a, node_b.addresses()[0], 2_000_000)
        assert result.bytes_received == 2_000_000

    sim.process(main())
    sim.run()
    sim.close()


def lossy_iperf_scenario():
    """Bulk transfer over a 1%-loss 50 ms-RTT link: exercises the whole
    NewReno+SACK machine (dup-ACK classification, fast recovery, partial
    ACKs, selective retransmission, RTO fallback) in both engine modes."""
    from repro.apps.iperf import run_iperf
    from repro.net.tcp import TcpStack
    from repro.net.topology import lan_pair
    from repro.sim import RngStreams
    from repro.sim.engine import Simulator

    sim = Simulator()
    rngs = RngStreams(2024)
    node_a, node_b = lan_pair(
        sim, bandwidth_bps=20e6, delay_s=0.025,
        loss_rate=0.01, loss_rng=rngs.stream("loss"),
    )
    tcp_a, tcp_b = TcpStack(node_a), TcpStack(node_b)

    def main():
        result = yield from run_iperf(tcp_b, tcp_a, node_b.addresses()[0], 500_000)
        assert result.bytes_received == 500_000

    sim.process(main())
    sim.run(until=120)
    sim.close()


def paced_ecn_scenario():
    """Paced sender through an ECN-marking bottleneck: the pacing timers and
    CE/ECE/CWR echo must behave identically in both engine modes."""
    from repro.net.packet import VirtualPayload
    from repro.net.tcp import TcpStack
    from repro.net.topology import lan_pair
    from repro.sim.engine import Simulator

    sim = Simulator()
    node_a, node_b = lan_pair(
        sim, bandwidth_bps=10e6, delay_s=0.005, ecn_threshold=8,
    )
    tcp_a, tcp_b = TcpStack(node_a), TcpStack(node_b)

    def server():
        listener = tcp_b.listen(5001)
        conn = yield listener.accept()
        total = 0
        while total < 300_000:
            chunk = yield conn.recv()
            total += len(chunk)

    def client():
        conn = yield sim.process(
            tcp_a.open_connection(node_b.addresses()[0], 5001, pacing=True)
        )
        conn.write(VirtualPayload(300_000))

    sim.process(server())
    sim.process(client())
    sim.run(until=60)
    sim.close()


def fluid_bulk_scenario():
    """Bulk transfer through the fluid fast-forward, including a forced
    mid-flight disturbance (competing flow) and re-entry: the probe,
    enter, exit and re-enter events — and every segment around them —
    must trace identically in both engine modes."""
    from repro.net.packet import VirtualPayload
    from repro.net.tcp import TcpStack
    from repro.net.topology import lan_pair
    from repro.sim.engine import Simulator

    n_bytes = 2_000_000
    sim = Simulator()
    node_a, node_b = lan_pair(sim, delay_s=0.02)
    tcp_a, tcp_b = TcpStack(node_a), TcpStack(node_b)
    listener = tcp_b.listen(5001, fluid=True)

    def server():
        conn = yield listener.accept()
        yield conn.rx.get()
        conn.write(VirtualPayload(n_bytes, tag="bulk"))
        while True:
            chunk = yield conn.rx.get()
            if not chunk:
                break
        conn.close()
        assert conn.fluid_enters >= 2  # disturbed once, re-entered

    def client():
        conn = yield sim.process(
            tcp_a.open_connection(node_b.addresses()[0], 5001, recv_window=65536)
        )
        conn.write(b"go")
        got = 0
        while got < n_bytes:
            chunk = yield conn.rx.get()
            got += len(chunk)
        conn.close()
        while True:
            chunk = yield conn.rx.get()
            if not chunk:
                break

    def competing():
        yield sim.timeout(0.6)
        side = tcp_b.listen(5002)

        def sink():
            conn2 = yield side.accept()
            yield conn2.rx.get()

        sim.process(sink())
        conn2 = yield sim.process(
            tcp_a.open_connection(node_b.addresses()[0], 5002)
        )
        conn2.write(b"disturbance")

    sim.process(server())
    sim.process(client())
    sim.process(competing())
    sim.run(until=60)
    sim.close()


def rubis_scenario():
    from repro.apps.workload import ClosedLoopClients
    from repro.scenarios.rubis_cloud import FRONTEND_PORT, build_rubis_cloud

    dep = build_rubis_cloud(seed=7, security="basic", n_web=1, extra_tenants=0)
    clients = ClosedLoopClients(
        dep.client_node, dep.client_tcp, dep.frontend_addr, FRONTEND_PORT,
        n_clients=2, rng=dep.rngs.stream("replay-smoke"),
        timeout=2.0, warmup=0.2,
    )
    proc = dep.sim.process(clients.run(1.0))
    dep.sim.run(until=proc)
    dep.sim.close()


def test_iperf_trace_digest_equal_across_modes(each_mode):
    runs = each_mode(iperf_scenario)
    assert runs[False].n_events == runs[True].n_events
    assert runs[False].digest == runs[True].digest
    assert runs[False].n_events > 1000  # the tap really saw the transfer


@pytest.mark.smoke
def test_rubis_trace_digest_equal_across_modes(each_mode):
    runs = each_mode(rubis_scenario)
    assert runs[False].n_events == runs[True].n_events
    assert runs[False].digest == runs[True].digest
    assert runs[False].n_events > 1000


def test_lossy_link_trace_digest_equal_across_modes(each_mode):
    """NewReno+SACK recovery under 1% loss is engine-mode independent."""
    runs = each_mode(lossy_iperf_scenario)
    assert runs[False].n_events == runs[True].n_events
    assert runs[False].digest == runs[True].digest
    assert runs[False].n_events > 1000


def test_paced_ecn_trace_digest_equal_across_modes(each_mode):
    """Pacing timers + ECN echo digest identically in both modes."""
    runs = each_mode(paced_ecn_scenario)
    assert runs[False].n_events == runs[True].n_events
    assert runs[False].digest == runs[True].digest
    assert runs[False].n_events > 500  # marks, reductions and tx all traced


def test_fluid_trace_digest_equal_across_modes(each_mode):
    """Fluid enter/exit/re-enter (probe, jump, disturbance) digests
    identically on the fast path and the reference engine."""
    runs = each_mode(fluid_bulk_scenario)
    assert runs[False].n_events == runs[True].n_events
    assert runs[False].digest == runs[True].digest
    assert runs[False].n_events > 500


def test_iperf_fast_mode_replay_deterministic():
    """Fast mode is also self-deterministic: two runs, identical stream."""
    saved = engine.DEFAULT_FAST_PATH
    engine.DEFAULT_FAST_PATH = True
    try:
        report = assert_replay_deterministic(iperf_scenario)
        assert report.runs[0].n_events > 1000
    finally:
        engine.DEFAULT_FAST_PATH = saved
