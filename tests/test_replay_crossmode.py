"""Cross-mode replay equivalence: fast path vs reference engine.

The engine/dataplane fast path (callback-lane timers, cached lookups, fused
packet construction) must be *observationally invisible*: the flight-recorder
event stream of a scenario run on the fast path must digest identically to
the same scenario on the retained reference path (generator processes,
per-packet delivery processes, uncached lookups).  These tests are the
referee for every fast-path optimization — if one reorders, drops, or
duplicates a traced event, the digests split.
"""

import pytest

import repro.sim.engine as engine
from repro.analysis.replay import assert_replay_deterministic, record_run


@pytest.fixture
def each_mode():
    """Yield a runner that records a scenario once per engine mode."""
    saved = engine.DEFAULT_FAST_PATH

    def run_both(scenario):
        runs = {}
        for fast in (False, True):
            engine.DEFAULT_FAST_PATH = fast
            runs[fast] = record_run(scenario, keep_events=False)
        return runs

    try:
        yield run_both
    finally:
        engine.DEFAULT_FAST_PATH = saved


def iperf_scenario():
    from repro.apps.iperf import run_iperf
    from repro.net.tcp import TcpStack
    from repro.net.topology import lan_pair
    from repro.sim.engine import Simulator

    sim = Simulator()
    node_a, node_b = lan_pair(sim)
    tcp_a, tcp_b = TcpStack(node_a), TcpStack(node_b)

    def main():
        result = yield from run_iperf(tcp_b, tcp_a, node_b.addresses()[0], 2_000_000)
        assert result.bytes_received == 2_000_000

    sim.process(main())
    sim.run()
    sim.close()


def rubis_scenario():
    from repro.apps.workload import ClosedLoopClients
    from repro.scenarios.rubis_cloud import FRONTEND_PORT, build_rubis_cloud

    dep = build_rubis_cloud(seed=7, security="basic", n_web=1, extra_tenants=0)
    clients = ClosedLoopClients(
        dep.client_node, dep.client_tcp, dep.frontend_addr, FRONTEND_PORT,
        n_clients=2, rng=dep.rngs.stream("replay-smoke"),
        timeout=2.0, warmup=0.2,
    )
    proc = dep.sim.process(clients.run(1.0))
    dep.sim.run(until=proc)
    dep.sim.close()


def test_iperf_trace_digest_equal_across_modes(each_mode):
    runs = each_mode(iperf_scenario)
    assert runs[False].n_events == runs[True].n_events
    assert runs[False].digest == runs[True].digest
    assert runs[False].n_events > 1000  # the tap really saw the transfer


@pytest.mark.smoke
def test_rubis_trace_digest_equal_across_modes(each_mode):
    runs = each_mode(rubis_scenario)
    assert runs[False].n_events == runs[True].n_events
    assert runs[False].digest == runs[True].digest
    assert runs[False].n_events > 1000


def test_iperf_fast_mode_replay_deterministic():
    """Fast mode is also self-deterministic: two runs, identical stream."""
    saved = engine.DEFAULT_FAST_PATH
    engine.DEFAULT_FAST_PATH = True
    try:
        report = assert_replay_deterministic(iperf_scenario)
        assert report.runs[0].n_events > 1000
    finally:
        engine.DEFAULT_FAST_PATH = saved
