"""Shared fixtures: deterministic RNGs, simulators, wired topologies."""

from __future__ import annotations

import random

import pytest

from repro.hip.daemon import HipConfig, HipDaemon
from repro.hip.identity import HostIdentity
from repro.net.addresses import ipv4
from repro.net.icmp import IcmpStack
from repro.net.tcp import TcpStack
from repro.net.topology import lan_pair
from repro.sim import Simulator


@pytest.fixture(autouse=True)
def _wire_sanitizer_for_smoke(request):
    """Smoke-marked tests run with the runtime wire sanitizer installed:
    every HIP control packet crossing a link is checked for TLV
    well-formedness and a byte-exact parse/serialize round-trip."""
    if request.node.get_closest_marker("smoke") is None:
        yield
        return
    from repro.analysis.wire import wire_sanitizer

    with wire_sanitizer():
        yield


@pytest.fixture(autouse=True)
def _causality_sanitizer_for_shards(request):
    """Smoke-marked tests and the shard suite run with the runtime causality
    sanitizer installed: every shard built while it is active has its
    happens-before, monotonic-scheduling and object-ownership contract
    checked as the simulation executes (inherited across worker forks in
    ``parallel=True`` runs)."""
    is_smoke = request.node.get_closest_marker("smoke") is not None
    module = getattr(request.node, "module", None)
    in_shard_suite = getattr(module, "__name__", "").endswith("test_shard")
    if not (is_smoke or in_shard_suite):
        yield
        return
    from repro.analysis.causality import causality_sanitizer

    with causality_sanitizer():
        yield


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xDECAF)


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def lan(sim):
    """Two hosts on one subnet: (sim, node_a, node_b)."""
    a, b = lan_pair(sim, "a", "b")
    return sim, a, b


@pytest.fixture(scope="session")
def session_identities():
    """RSA-512 host identities, generated once per test session (keygen is slow)."""
    gen = random.Random(0x1D54)
    return {
        "a": HostIdentity.generate(gen, "rsa", rsa_bits=512),
        "b": HostIdentity.generate(gen, "rsa", rsa_bits=512),
        "c": HostIdentity.generate(gen, "rsa", rsa_bits=512),
        "ecdsa": HostIdentity.generate(gen, "ecdsa"),
    }


@pytest.fixture
def hip_pair(sim, session_identities):
    """Two HIP-enabled hosts with peer mappings installed.

    Returns (sim, node_a, node_b, daemon_a, daemon_b).
    """
    a, b = lan_pair(sim, "a", "b")
    da = HipDaemon(a, session_identities["a"], rng=random.Random(11))
    db = HipDaemon(b, session_identities["b"], rng=random.Random(22))
    da.add_peer(db.hit, [ipv4("10.0.0.2")])
    db.add_peer(da.hit, [ipv4("10.0.0.1")])
    return sim, a, b, da, db


def run_proc(sim: Simulator, generator, until: float = 60.0):
    """Drive one process to completion; returns its value."""
    proc = sim.process(generator)
    return sim.run(until=proc)


@pytest.fixture
def drive():
    return run_proc
