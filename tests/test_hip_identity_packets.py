"""HIP identities, HIT derivation, LSIs and control-packet wire format."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hip import packets as hp
from repro.hip.identity import (
    HostIdentity,
    LsiAllocator,
    asym_cost_for_host_id,
    hit_from_public_key,
    verify_with_host_id,
)
from repro.crypto.costmodel import CostModel
from repro.net.addresses import IPAddress, ipv6, is_hit, is_lsi


class TestHit:
    def test_hit_is_orchid(self, session_identities):
        assert is_hit(session_identities["a"].hit)
        assert is_hit(session_identities["ecdsa"].hit)

    def test_hit_deterministic(self):
        assert hit_from_public_key(b"key") == hit_from_public_key(b"key")

    def test_hit_key_sensitivity(self):
        assert hit_from_public_key(b"key1") != hit_from_public_key(b"key2")

    def test_distinct_identities_distinct_hits(self, session_identities):
        hits = {ident.hit for ident in session_identities.values()}
        assert len(hits) == len(session_identities)

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=30)
    def test_hit_always_in_prefix(self, key):
        assert is_hit(hit_from_public_key(key))


class TestHostIdentity:
    def test_rsa_sign_verify_via_host_id(self, session_identities, rng):
        ident = session_identities["a"]
        sig = ident.sign(b"message", rng)
        assert verify_with_host_id(ident.public_key_bytes, b"message", sig)
        assert not verify_with_host_id(ident.public_key_bytes, b"other", sig)

    def test_ecdsa_sign_verify_via_host_id(self, session_identities, rng):
        ident = session_identities["ecdsa"]
        sig = ident.sign(b"message", rng)
        assert verify_with_host_id(ident.public_key_bytes, b"message", sig)

    def test_cross_identity_verification_fails(self, session_identities, rng):
        sig = session_identities["a"].sign(b"m", rng)
        assert not verify_with_host_id(
            session_identities["b"].public_key_bytes, b"m", sig
        )

    def test_garbage_host_id_fails_safely(self):
        assert not verify_with_host_id(b"", b"m", b"sig")
        assert not verify_with_host_id(b"XXX:junk", b"m", b"sig")
        assert not verify_with_host_id(b"RSA:", b"m", b"sig")

    def test_unknown_algorithm_rejected(self, rng):
        with pytest.raises(ValueError):
            HostIdentity.generate(rng, "dsa")

    def test_asym_cost_rsa_vs_ecdsa(self, session_identities):
        cm = CostModel()
        rsa_hi = session_identities["a"].public_key_bytes
        ecc_hi = session_identities["ecdsa"].public_key_bytes
        # ECDSA signing is cheaper than RSA-1024-class signing; verify is not.
        assert asym_cost_for_host_id(ecc_hi, "sign", cm) == cm.ecdsa_sign_p256
        assert asym_cost_for_host_id(rsa_hi, "verify", cm) < asym_cost_for_host_id(
            ecc_hi, "verify", cm
        )


class TestLsiAllocator:
    def test_own_lsi_constant(self):
        alloc = LsiAllocator()
        assert str(alloc.own_lsi) == "1.0.0.1"

    def test_assign_stable_per_hit(self):
        alloc = LsiAllocator()
        hit = ipv6("2001:10::1")
        assert alloc.assign(hit) == alloc.assign(hit)

    def test_assignments_unique_and_in_prefix(self):
        alloc = LsiAllocator()
        lsis = [alloc.assign(ipv6(f"2001:10::{i:x}")) for i in range(1, 50)]
        assert len(set(lsis)) == len(lsis)
        assert all(is_lsi(lsi) for lsi in lsis)

    def test_reverse_lookup(self):
        alloc = LsiAllocator()
        hit = ipv6("2001:10::77")
        lsi = alloc.assign(hit)
        assert alloc.hit_for(lsi) == hit
        assert alloc.lsi_for(hit) == lsi
        assert alloc.hit_for(alloc.own_lsi) is None


HIT_A = ipv6("2001:10::a")
HIT_B = ipv6("2001:10::b")


class TestWireFormat:
    def _sample_packet(self) -> hp.HipPacket:
        pkt = hp.HipPacket(packet_type=hp.I2, sender_hit=HIT_A, receiver_hit=HIT_B)
        pkt.add(hp.SOLUTION, hp.build_solution(10, 0, b"\x01" * 8, b"\x02" * 8))
        pkt.add(hp.DIFFIE_HELLMAN, hp.build_dh(5, b"\x99" * 192))
        pkt.add(hp.ESP_INFO, hp.build_esp_info(0, 0xABCD))
        pkt.add(hp.HOST_ID, hp.build_host_id(b"RSA:fakekey", b"host.example"))
        pkt.add(hp.HMAC_PARAM, b"\xaa" * 20)
        pkt.add(hp.HIP_SIGNATURE, b"\xbb" * 64)
        return pkt

    def test_serialize_parse_roundtrip(self):
        pkt = self._sample_packet()
        parsed = hp.HipPacket.parse(pkt.serialize())
        assert parsed.packet_type == hp.I2
        assert parsed.sender_hit == HIT_A
        assert parsed.receiver_hit == HIT_B
        assert parsed.get(hp.ESP_INFO) == pkt.get(hp.ESP_INFO)
        assert parsed.get(hp.HOST_ID) == pkt.get(hp.HOST_ID)

    def test_serialized_length_multiple_of_8(self):
        data = self._sample_packet().serialize()
        assert len(data) % 8 == 0

    def test_params_sorted_by_type_code(self):
        pkt = self._sample_packet()
        data = pkt.serialize()
        parsed = hp.HipPacket.parse(data)
        codes = [p.code for p in parsed.params]
        assert codes == sorted(codes)

    def test_truncated_packet_rejected(self):
        data = self._sample_packet().serialize()
        with pytest.raises(hp.HipParseError):
            hp.HipPacket.parse(data[:30])
        with pytest.raises(hp.HipParseError):
            hp.HipPacket.parse(data[:-8])

    def test_bad_version_rejected(self):
        data = bytearray(self._sample_packet().serialize())
        data[3] = 0x21  # version 2
        with pytest.raises(hp.HipParseError):
            hp.HipPacket.parse(bytes(data))

    def test_bytes_for_param_excludes_from_code(self):
        pkt = self._sample_packet()
        sig_input = pkt.bytes_for_param(hp.HIP_SIGNATURE)
        hmac_input = pkt.bytes_for_param(hp.HMAC_PARAM)
        full = pkt.serialize()
        assert len(hmac_input) < len(sig_input) < len(full)
        # The signature input must cover the HMAC param.
        assert b"\xaa" * 20 in sig_input
        assert b"\xaa" * 20 not in hmac_input

    def test_get_all(self):
        pkt = hp.HipPacket(packet_type=hp.UPDATE, sender_hit=HIT_A, receiver_hit=HIT_B)
        pkt.add(hp.ACK, hp.build_ack([1]))
        pkt.add(hp.ACK, hp.build_ack([2]))
        assert len(pkt.get_all(hp.ACK)) == 2
        assert pkt.get(hp.SEQ) is None


class TestParamCodecs:
    def test_puzzle_roundtrip(self):
        data = hp.build_puzzle(12, 6, 37, b"\x0f" * 8)
        assert hp.parse_puzzle(data) == (12, 6, 37, b"\x0f" * 8)

    def test_solution_roundtrip(self):
        data = hp.build_solution(12, 37, b"\x01" * 8, b"\x02" * 8)
        assert hp.parse_solution(data) == (12, 37, b"\x01" * 8, b"\x02" * 8)

    def test_dh_roundtrip(self):
        data = hp.build_dh(14, b"\xab" * 256)
        assert hp.parse_dh(data) == (14, b"\xab" * 256)

    def test_dh_truncated(self):
        with pytest.raises(hp.HipParseError):
            hp.parse_dh(hp.build_dh(14, b"\xab" * 256)[:-1])

    def test_esp_info_roundtrip(self):
        data = hp.build_esp_info(0x11, 0x22, keymat_index=3)
        assert hp.parse_esp_info(data) == (3, 0x11, 0x22)

    def test_host_id_roundtrip(self):
        data = hp.build_host_id(b"RSA:key", b"fqdn.example")
        assert hp.parse_host_id(data) == (b"RSA:key", b"fqdn.example")

    def test_locator_roundtrip(self):
        from repro.net.addresses import ipv4

        addrs = [(ipv4("10.0.0.5"), 120.0), (ipv6("2001:db8::1"), 60.0)]
        parsed = hp.parse_locator(hp.build_locator(addrs))
        assert parsed == addrs

    def test_seq_ack_roundtrip(self):
        assert hp.parse_seq(hp.build_seq(77)) == 77
        assert hp.parse_ack(hp.build_ack([1, 2, 3])) == [1, 2, 3]

    def test_transform_roundtrip(self):
        suites = [hp.SUITE_AES_CBC_HMAC_SHA1, hp.SUITE_NULL_HMAC_SHA1]
        assert hp.parse_transform(hp.build_transform(suites)) == suites

    def test_malformed_params_raise(self):
        for parser in (hp.parse_puzzle, hp.parse_solution, hp.parse_esp_info,
                       hp.parse_host_id, hp.parse_seq, hp.parse_locator):
            with pytest.raises(hp.HipParseError):
                parser(b"\x00")
