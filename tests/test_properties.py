"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hip import packets as hp
from repro.hip.esp import EspError, EspMode, SecurityAssociation
from repro.net.addresses import IPAddress, ipv4, ipv6
from repro.net.packet import IPHeader, Packet, TCPHeader, VirtualPayload
from repro.net.tcp import TcpStack
from repro.net.topology import lan_pair
from repro.sim import Simulator

HIT_A, HIT_B = ipv6("2001:10::a"), ipv6("2001:10::b")

slow_settings = settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture,
                           HealthCheck.too_slow],
)


class TestTcpStreamProperties:
    @given(chunks=st.lists(
        st.one_of(st.binary(min_size=1, max_size=4000),
                  st.integers(min_value=1, max_value=20_000)),
        min_size=1, max_size=12,
    ))
    @slow_settings
    def test_stream_preserves_bytes_and_lengths(self, chunks):
        """Any interleaving of real/virtual writes arrives intact, in order."""
        sim = Simulator()
        a, b = lan_pair(sim, "a", "b")
        ta, tb = TcpStack(a), TcpStack(b)
        total = sum(len(c) if isinstance(c, bytes) else c for c in chunks)
        expected_real = b"".join(c for c in chunks if isinstance(c, bytes))
        got = {}

        def server():
            listener = tb.listen(80)
            conn = yield listener.accept()
            pieces = []
            received = 0
            while received < total:
                chunk = yield conn.recv()
                received += len(chunk)
                pieces.append(chunk)
            got["real"] = b"".join(
                bytes(p) for p in pieces if not isinstance(p, VirtualPayload)
            )
            got["total"] = received

        def client():
            conn = yield sim.process(ta.open_connection(ipv4("10.0.0.2"), 80))
            for c in chunks:
                conn.write(c if isinstance(c, bytes) else VirtualPayload(c))

        sim.process(server())
        sim.process(client())
        sim.run(until=120)
        assert got.get("total") == total
        assert got.get("real") == expected_real

    @given(seed=st.integers(0, 2**16), loss=st.floats(0.0, 0.15))
    @slow_settings
    def test_lossy_transfer_is_reliable(self, seed, loss):
        from repro.net.link import Link
        from repro.net.node import Node
        from repro.net.addresses import prefix

        sim = Simulator()
        a = Node(sim, "a")
        b = Node(sim, "b")
        link = Link(sim, bandwidth_bps=50e6, delay_s=1e-3,
                    loss_rate=loss, loss_rng=random.Random(seed))
        ia = a.add_interface("eth0", ipv4("10.0.0.1"))
        ib = b.add_interface("eth0", ipv4("10.0.0.2"))
        link.connect(ia, ib)
        a.routes.add(prefix("10.0.0.0/24"), ia)
        b.routes.add(prefix("10.0.0.0/24"), ib)
        ta, tb = TcpStack(a), TcpStack(b)
        payload = bytes((seed + i) % 251 for i in range(5000))
        got = {}

        def server():
            listener = tb.listen(80)
            conn = yield listener.accept()
            got["data"] = yield from conn.recv_bytes(len(payload))

        def client():
            conn = yield sim.process(ta.open_connection(ipv4("10.0.0.2"), 80))
            conn.write(payload)

        sim.process(server())
        sim.process(client())
        sim.run(until=300)
        assert got.get("data") == payload


class TestEspProperties:
    def _sa_pair(self):
        enc, auth = bytes(range(16)), bytes(range(20))
        mk = lambda: SecurityAssociation(
            spi=0x42, enc_key=enc, auth_key=auth,
            src_hit=HIT_A, dst_hit=HIT_B, mode=EspMode.BEET,
        )
        return mk(), mk()

    @given(payloads=st.lists(st.binary(min_size=0, max_size=300),
                             min_size=1, max_size=20))
    @slow_settings
    def test_protect_verify_roundtrip_any_payload(self, payloads):
        out_sa, in_sa = self._sa_pair()
        for data in payloads:
            inner = Packet(
                headers=(IPHeader(src=ipv4("1.0.0.1"), dst=ipv4("1.0.0.2"),
                                  proto="tcp"),
                         TCPHeader(src_port=1, dst_port=2)),
                payload=data,
            )
            assert in_sa.verify(*out_sa.protect(inner)) is inner

    @given(order=st.permutations(list(range(10))))
    @slow_settings
    def test_any_window_order_accepted_once(self, order):
        """Every permutation inside the replay window verifies exactly once."""
        out_sa, in_sa = self._sa_pair()
        packets = []
        for i in range(10):
            inner = Packet(
                headers=(TCPHeader(src_port=1, dst_port=2, seq=i),),
                payload=bytes([i]),
            )
            packets.append(out_sa.protect(inner))
        for idx in order:
            in_sa.verify(*packets[idx])
        for idx in order:
            with pytest.raises(EspError):
                in_sa.verify(*packets[idx])

    @given(flip=st.integers(0, 10_000), data=st.binary(min_size=1, max_size=200))
    @slow_settings
    def test_any_single_bit_flip_detected(self, flip, data):
        out_sa, in_sa = self._sa_pair()
        inner = Packet(headers=(TCPHeader(src_port=9, dst_port=9),), payload=data)
        header, ct = out_sa.protect(inner)
        blob = bytearray(ct.ciphertext)
        position = flip % (len(blob) * 8)
        blob[position // 8] ^= 1 << (position % 8)
        from repro.hip.esp import EspCiphertext

        tampered = EspCiphertext(inner=ct.inner, wire_len=ct.wire_len,
                                 ciphertext=bytes(blob), icv=ct.icv, iv=ct.iv)
        with pytest.raises(EspError):
            in_sa.verify(header, tampered)


class TestHipPacketProperties:
    @given(params=st.lists(
        st.tuples(st.sampled_from([hp.ESP_INFO, hp.PUZZLE, hp.SEQ, hp.ACK,
                                   hp.HOST_ID, hp.HMAC_PARAM, hp.HIP_SIGNATURE]),
                  st.binary(min_size=0, max_size=120)),
        min_size=0, max_size=8,
    ))
    @slow_settings
    def test_serialize_parse_roundtrip(self, params):
        pkt = hp.HipPacket(packet_type=hp.UPDATE, sender_hit=HIT_A,
                           receiver_hit=HIT_B)
        for code, data in params:
            pkt.params.append(hp.Param(code, data))
        pkt.params.sort(key=lambda p: p.code)
        parsed = hp.HipPacket.parse(pkt.serialize())
        assert [(p.code, p.data) for p in parsed.params] == [
            (p.code, p.data) for p in pkt.params
        ]

    @given(data=st.binary(min_size=0, max_size=200))
    @slow_settings
    def test_parser_never_crashes_on_garbage(self, data):
        """Fuzz: arbitrary bytes either parse or raise HipParseError."""
        try:
            hp.HipPacket.parse(data)
        except hp.HipParseError:
            pass

    @given(cut=st.integers(1, 200))
    @slow_settings
    def test_truncations_rejected(self, cut):
        pkt = hp.HipPacket(packet_type=hp.I2, sender_hit=HIT_A, receiver_hit=HIT_B)
        pkt.add(hp.HOST_ID, hp.build_host_id(b"RSA:" + bytes(64)))
        pkt.add(hp.HIP_SIGNATURE, bytes(64))
        data = pkt.serialize()
        cut = min(cut, len(data) - 1)
        with pytest.raises(hp.HipParseError):
            hp.HipPacket.parse(data[:-cut])


class TestAddressProperties:
    @given(value=st.integers(0, 2**128 - 1))
    @slow_settings
    def test_ipv6_text_roundtrip(self, value):
        addr = IPAddress(6, value)
        # Our formatter emits the uncompressed form, which must re-parse.
        assert ipv6(str(addr)) == addr

    @given(value=st.integers(0, 2**32 - 1), length=st.integers(0, 32))
    @slow_settings
    def test_prefix_contains_its_network(self, value, length):
        from repro.net.addresses import Prefix

        network = IPAddress(4, value & ~((1 << (32 - length)) - 1) if length < 32
                            else value)
        p = Prefix(network, length)
        assert p.contains(network)
