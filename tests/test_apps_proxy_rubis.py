"""Reverse proxy / load balancer and RUBiS web-tier tests."""

import random

import pytest

from repro.apps.database import DbServer, rubis_tables
from repro.apps.http import HttpRequest, read_response, write_request
from repro.apps.proxy import Backend, ReverseProxy
from repro.apps.rubis import (
    REQUEST_MIX,
    RubisWebServer,
    pick_request,
    request_path,
)
from repro.apps.streams import BufferedReader, PlainStream
from repro.net.addresses import ipv4, prefix
from repro.net.node import Node
from repro.net.tcp import TcpStack
from repro.net.topology import wire
from repro.sim import Simulator


@pytest.fixture
def mini_site(sim):
    """client -- proxy -- {web0, web1} -- db, all plain TCP."""
    client = Node(sim, "client", cpu_cores=2)
    proxy_node = Node(sim, "proxy", cpu_cores=2)
    webs = [Node(sim, f"web{i}") for i in range(2)]
    db_node = Node(sim, "db", cpu_cores=2)

    addr = {
        "client": ipv4("10.0.0.2"), "proxy": ipv4("10.0.0.1"),
        "web0": ipv4("10.1.0.1"), "web1": ipv4("10.1.0.2"),
        "db": ipv4("10.2.0.1"),
    }
    core = Node(sim, "core", forwarding=True)
    for name, node in [("client", client), ("proxy", proxy_node),
                       ("web0", webs[0]), ("web1", webs[1]), ("db", db_node)]:
        iface, core_if, _ = wire(sim, node, core, addr_a=addr[name], delay_s=5e-4)
        node.routes.add(prefix("0.0.0.0/0"), iface)
        core.routes.add(prefix(str(addr[name]) + "/32"), core_if)

    tcp = {n.name: TcpStack(n) for n in [client, proxy_node, *webs, db_node]}
    db = DbServer(db_node, tcp["db"], 3306, rubis_tables(),
                  rng=random.Random(1), stochastic=False)
    servers = [
        RubisWebServer(web, tcp[web.name], 8080, addr["db"], 3306,
                       rng=random.Random(10 + i))
        for i, web in enumerate(webs)
    ]
    backends = [Backend(addr=addr["web0"], port=8080),
                Backend(addr=addr["web1"], port=8080)]
    proxy = ReverseProxy(proxy_node, tcp["proxy"], 80, backends,
                         rng=random.Random(5))
    return sim, client, tcp["client"], addr, proxy, servers, db


def http_get(sim, tcp, frontend, path, out, key="resp"):
    def flow():
        conn = yield sim.process(tcp.open_connection(frontend, 80))
        stream = PlainStream(conn)
        reader = BufferedReader(stream)
        yield from write_request(stream, HttpRequest(method="GET", path=path))
        out[key] = yield from read_response(reader)
        stream.close()

    return sim.process(flow())


@pytest.fixture
def small_proxy_net(sim):
    """client -- proxy -- backend chain, plain TCP, no servers installed."""
    client = Node(sim, "client")
    proxy_node = Node(sim, "proxy")
    backend_node = Node(sim, "backend")
    ic, ipc, _ = wire(sim, client, proxy_node,
                      addr_a=ipv4("10.0.0.2"), addr_b=ipv4("10.0.0.1"))
    ipb, ib, _ = wire(sim, proxy_node, backend_node,
                      addr_a=ipv4("10.1.0.1"), addr_b=ipv4("10.1.0.2"))
    client.routes.add(prefix("0.0.0.0/0"), ic)
    backend_node.routes.add(prefix("0.0.0.0/0"), ib)
    proxy_node.routes.add(prefix("10.0.0.0/24"), ipc)
    proxy_node.routes.add(prefix("10.1.0.0/24"), ipb)
    tcp = {"client": TcpStack(client), "proxy": TcpStack(proxy_node),
           "backend": TcpStack(backend_node)}
    return sim, tcp, proxy_node, backend_node


class TestProxyRegressions:
    def test_failed_dial_does_not_leak_pool_slots(self, small_proxy_net):
        """Regression: a failed upstream dial kept its pool-capacity slot.

        With keep-alive pooling and a dead backend, two failed dials used to
        exhaust a 2-slot pool permanently; the third request then blocked on
        ``pool.get()`` forever and the simulation starved.
        """
        sim, tcp, proxy_node, backend_node = small_proxy_net
        proxy = ReverseProxy(proxy_node, tcp["proxy"], 80,
                             [Backend(addr=ipv4("10.1.0.2"), port=9999)],
                             rng=random.Random(1), backend_keepalive=True,
                             max_pool_per_backend=2)
        out = {}
        for i in range(4):  # strictly more requests than pool slots
            proc = http_get(sim, tcp["client"], ipv4("10.0.0.1"), "/a", out, key=i)
            sim.run(until=proc)
        assert [out[i].status for i in range(4)] == [502] * 4
        assert all(size == 0 for size in proxy._pool_sizes.values())

    def test_upstream_close_mid_request_does_not_leak_connections(self, small_proxy_net):
        """Regression: non-keepalive forwards leaked the upstream TCP
        connection when the backend died between connect and response."""
        sim, tcp, proxy_node, backend_node = small_proxy_net
        listener = tcp["backend"].listen(8080)

        def rude_backend():
            while True:
                conn = yield listener.accept()
                conn.close()  # accept, then hang up before any response

        sim.process(rude_backend(), name="rude-backend")
        ReverseProxy(proxy_node, tcp["proxy"], 80,
                     [Backend(addr=ipv4("10.1.0.2"), port=8080)],
                     rng=random.Random(1))
        out = {}
        proc = http_get(sim, tcp["client"], ipv4("10.0.0.1"), "/a", out)
        sim.run(until=proc)
        sim.run(until=sim.now + 10)  # let FIN handshakes complete
        assert out["resp"].status == 502
        assert tcp["proxy"]._connections == {}

    def test_graceful_keepalive_close_is_not_a_client_error(self, mini_site):
        """Regression: a client ending its keep-alive session by closing the
        connection was counted as a client error."""
        sim, client, tcp, addr, proxy, servers, db = mini_site
        out = {}
        proc = http_get(sim, tcp, addr["proxy"], "/browse?id=1", out)
        sim.run(until=proc)
        sim.run(until=sim.now + 5)  # proxy observes the close
        assert out["resp"].status == 200
        assert proxy.stats.responses == 1
        assert proxy.stats.client_errors == 0

    def test_abort_mid_request_head_is_a_client_error(self, mini_site):
        sim, client, tcp, addr, proxy, servers, db = mini_site

        def flow():
            conn = yield sim.process(tcp.open_connection(addr["proxy"], 80))
            stream = PlainStream(conn)
            yield from stream.send(b"GET /brow")  # partial request head
            yield sim.timeout(0.5)
            stream.close()

        sim.process(flow())
        sim.run(until=10)
        assert proxy.stats.requests == 0
        assert proxy.stats.client_errors == 1


class TestRubisWebTier:
    def test_request_mix_weights_normalized_sampling(self, rng):
        counts = {}
        for _ in range(2000):
            rt = pick_request(rng)
            counts[rt.name] = counts.get(rt.name, 0) + 1
        # Heaviest type sampled most.
        assert counts["SearchItemsByCategory"] == max(counts.values())
        assert set(counts) == {rt.name for rt in REQUEST_MIX}

    def test_request_path_randomizes_keys(self, rng):
        rt = REQUEST_MIX[0]
        paths = {request_path(rt, rng) for _ in range(50)}
        assert len(paths) > 10

    def test_end_to_end_page_fetch(self, mini_site):
        sim, client, tcp, addr, proxy, servers, db = mini_site
        out = {}
        http_get(sim, tcp, addr["proxy"], "/item?id=3", out)
        sim.run(until=20)
        resp = out["resp"]
        assert resp.status == 200
        assert len(resp.body) == 30720  # ViewItem page size
        assert db.stats.queries == 2  # items pk + bids scan

    def test_unknown_path_404(self, mini_site):
        sim, client, tcp, addr, proxy, servers, db = mini_site
        out = {}
        http_get(sim, tcp, addr["proxy"], "/nonexistent", out)
        sim.run(until=20)
        assert out["resp"].status == 404

    def test_round_robin_balances(self, mini_site):
        sim, client, tcp, addr, proxy, servers, db = mini_site
        out = {}
        for i in range(6):
            http_get(sim, tcp, addr["proxy"], "/browse?id=1", out, key=i)
        sim.run(until=30)
        assert all(out[i].status == 200 for i in range(6))
        served = [b.served for b in proxy.backends]
        assert served == [3, 3]

    def test_least_connections_mode(self, sim):
        backends = [Backend(addr=ipv4("10.0.0.1"), port=1),
                    Backend(addr=ipv4("10.0.0.2"), port=1)]
        node = Node(sim, "p")
        node.add_interface("eth0", ipv4("10.0.0.9"))
        proxy = ReverseProxy(node, TcpStack(node), 80, backends,
                             rng=random.Random(1), algorithm="least-connections")
        backends[0].active = 5
        assert proxy._pick_backend() is backends[1]
        backends[1].active = 9
        assert proxy._pick_backend() is backends[0]

    def test_invalid_algorithm_rejected(self, sim):
        node = Node(sim, "p")
        node.add_interface("eth0", ipv4("10.0.0.9"))
        with pytest.raises(ValueError):
            ReverseProxy(node, TcpStack(node), 80,
                         [Backend(addr=ipv4("10.0.0.1"), port=1)],
                         rng=random.Random(1), algorithm="random")

    def test_no_backends_rejected(self, sim):
        node = Node(sim, "p")
        with pytest.raises(ValueError):
            ReverseProxy(node, TcpStack(node), 80, [], rng=random.Random(1))

    def test_dead_backend_returns_502(self, sim):
        client = Node(sim, "client")
        proxy_node = Node(sim, "proxy")
        ic, ip_, _ = wire(sim, client, proxy_node,
                          addr_a=ipv4("10.0.0.2"), addr_b=ipv4("10.0.0.1"))
        client.routes.add(prefix("0.0.0.0/0"), ic)
        proxy_node.routes.add(prefix("0.0.0.0/0"), ip_)
        tcp_c, tcp_p = TcpStack(client), TcpStack(proxy_node)
        # Backend address exists but nothing listens there.
        ReverseProxy(proxy_node, tcp_p, 80,
                     [Backend(addr=ipv4("10.0.0.2"), port=9999)],
                     rng=random.Random(1))
        out = {}
        http_get(sim, tcp_c, ipv4("10.0.0.1"), "/browse", out)
        sim.run(until=30)
        assert out["resp"].status == 502

    def test_keepalive_pool_reuses_connections(self, mini_site):
        sim, client, tcp, addr, proxy, servers, db = mini_site
        proxy.backend_keepalive = True
        out = {}
        for i in range(4):  # sequential, so pooled connections get reused
            proc = http_get(sim, tcp, addr["proxy"], "/browse?id=1", out, key=i)
            sim.run(until=proc)
        # Two backends round-robined -> one pooled connection each.
        assert sum(proxy._pool_sizes.values()) <= 2

    def test_client_keepalive_multiple_requests_one_connection(self, mini_site):
        sim, client, tcp, addr, proxy, servers, db = mini_site
        out = {}

        def flow():
            conn = yield sim.process(tcp.open_connection(addr["proxy"], 80))
            stream = PlainStream(conn)
            reader = BufferedReader(stream)
            statuses = []
            for path in ("/browse?id=1", "/user?id=2", "/bids?id=3"):
                yield from write_request(stream, HttpRequest(method="GET", path=path))
                resp = yield from read_response(reader)
                statuses.append(resp.status)
            out["statuses"] = statuses

        sim.process(flow())
        sim.run(until=30)
        assert out["statuses"] == [200, 200, 200]
        assert proxy.stats.responses == 3

    def test_db_failure_yields_503(self, sim):
        # Web server with a DB address that refuses connections.
        web = Node(sim, "web")
        client = Node(sim, "client")
        iw, ic0, _ = wire(sim, web, client,
                          addr_a=ipv4("10.0.0.1"), addr_b=ipv4("10.0.0.2"))
        web.routes.add(prefix("0.0.0.0/0"), iw)
        client.routes.add(prefix("0.0.0.0/0"), ic0)
        tcp_w, tcp_c = TcpStack(web), TcpStack(client)
        RubisWebServer(web, tcp_w, 8080, ipv4("10.0.0.2"), 3306,
                       rng=random.Random(1))
        out = {}

        def flow():
            conn = yield sim.process(tcp_c.open_connection(ipv4("10.0.0.1"), 8080))
            stream = PlainStream(conn)
            reader = BufferedReader(stream)
            yield from write_request(stream, HttpRequest(method="GET", path="/browse"))
            out["resp"] = yield from read_response(reader)

        sim.process(flow())
        sim.run(until=60)
        assert out["resp"].status == 503
