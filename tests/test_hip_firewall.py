"""HIT-based firewall tests: end-host ACLs and the hypervisor middlebox."""

import random

import pytest

from repro.hip.daemon import HipDaemon, HipError
from repro.hip.firewall import HipFirewall, MiddleboxFirewall, Verdict
from repro.net.addresses import ipv4, ipv6, prefix
from repro.net.node import Node
from repro.net.tcp import TcpStack
from repro.net.topology import lan_pair, wire
from repro.sim import Simulator

A, B = ipv4("10.0.0.1"), ipv4("10.0.0.2")


class TestPolicy:
    def test_default_allow(self):
        fw = HipFirewall()
        assert fw.allow_inbound(ipv6("2001:10::1"))

    def test_default_deny(self):
        fw = HipFirewall(default=Verdict.DENY)
        assert not fw.allow_inbound(ipv6("2001:10::1"))
        assert fw.denied_inbound == 1

    def test_allow_list_overrides_default_deny(self):
        fw = HipFirewall(default=Verdict.DENY)
        hit = ipv6("2001:10::1")
        fw.allow_hit(hit)
        assert fw.allow_inbound(hit)

    def test_deny_list_overrides_default_allow(self):
        fw = HipFirewall()
        hit = ipv6("2001:10::1")
        fw.deny_hit(hit)
        assert not fw.allow_outbound(hit)
        assert fw.denied_outbound == 1

    def test_allow_then_deny_moves_entry(self):
        fw = HipFirewall()
        hit = ipv6("2001:10::1")
        fw.allow_hit(hit)
        fw.deny_hit(hit)
        assert not fw.allow_inbound(hit)


class TestEndHostFirewall:
    def _pair(self, sim, session_identities, fw_a=None, fw_b=None):
        a, b = lan_pair(sim, "a", "b")
        da = HipDaemon(a, session_identities["a"], rng=random.Random(1), firewall=fw_a)
        db = HipDaemon(b, session_identities["b"], rng=random.Random(2), firewall=fw_b)
        da.add_peer(db.hit, [B])
        db.add_peer(da.hit, [A])
        return da, db

    def test_responder_denies_unwanted_initiator(self, sim, session_identities):
        fw = HipFirewall(default=Verdict.DENY)
        da, db = self._pair(sim, session_identities, fw_b=fw)

        def flow():
            with pytest.raises(HipError):
                yield from da.associate(db.hit, timeout=6.0)
            return True

        proc = sim.process(flow())
        assert sim.run(until=proc) is True
        assert db.drops_policy >= 1

    def test_responder_allows_whitelisted_initiator(self, sim, session_identities, drive):
        fw = HipFirewall(default=Verdict.DENY)
        da, db = self._pair(sim, session_identities, fw_b=fw)
        fw.allow_hit(da.hit)
        assoc = drive(sim, da.associate(db.hit))
        assert assoc.is_established

    def test_outbound_policy_blocks_initiation(self, sim, session_identities):
        fw = HipFirewall(default=Verdict.DENY)
        da, db = self._pair(sim, session_identities, fw_a=fw)

        def flow():
            with pytest.raises(HipError, match="policy"):
                yield from da.associate(db.hit, timeout=6.0)
            return True

        proc = sim.process(flow())
        assert sim.run(until=proc) is True


class TestMiddleboxFirewall:
    @pytest.fixture
    def routed_pair(self, sim, session_identities):
        """a -- middlebox(router) -- b with HIP daemons on a and b."""
        a = Node(sim, "a")
        mbox = Node(sim, "mbox", forwarding=True)
        b = Node(sim, "b")
        ia, ma, _ = wire(sim, a, mbox, addr_a=ipv4("10.0.1.2"))
        mb, ib, _ = wire(sim, mbox, b, addr_b=ipv4("10.0.2.2"))
        a.routes.add(prefix("0.0.0.0/0"), ia)
        mbox.routes.add(prefix("10.0.1.0/24"), ma)
        mbox.routes.add(prefix("10.0.2.0/24"), mb)
        b.routes.add(prefix("0.0.0.0/0"), ib)
        da = HipDaemon(a, session_identities["a"], rng=random.Random(1))
        db = HipDaemon(b, session_identities["b"], rng=random.Random(2))
        da.add_peer(db.hit, [ipv4("10.0.2.2")])
        db.add_peer(da.hit, [ipv4("10.0.1.2")])
        return sim, mbox, da, db

    def test_permitted_exchange_opens_pinhole(self, routed_pair, drive):
        sim, mbox, da, db = routed_pair
        fw = MiddleboxFirewall(mbox)
        assoc = drive(sim, da.associate(db.hit))
        assert assoc.is_established
        assert len(fw._pinholes) == 1
        # Data flows through the pinhole.
        ta, tb = TcpStack(da.node), TcpStack(db.node)
        got = {}

        def server():
            listener = tb.listen(80)
            conn = yield listener.accept()
            got["x"] = yield from conn.recv_bytes(2)

        def client():
            conn = yield sim.process(ta.open_connection(db.hit, 80))
            conn.write(b"ok")

        sim.process(server())
        sim.process(client())
        sim.run(until=sim.now + 30)
        assert got.get("x") == b"ok"
        assert fw.dropped_esp == 0

    def test_denied_hit_cannot_establish_through_box(self, routed_pair):
        sim, mbox, da, db = routed_pair
        policy = HipFirewall(default=Verdict.DENY)
        fw = MiddleboxFirewall(mbox, policy=policy)

        def flow():
            with pytest.raises(HipError):
                yield from da.associate(db.hit, timeout=6.0)
            return True

        proc = sim.process(flow())
        assert sim.run(until=proc) is True
        assert fw.dropped_hip >= 1

    def test_esp_without_observed_exchange_dropped(self, routed_pair):
        """Spoofed ESP between the same locators is dropped: no pinhole."""
        sim, mbox, da, db = routed_pair
        fw = MiddleboxFirewall(mbox)
        from repro.net.packet import ESPHeader, Packet

        spoofed = Packet(headers=(ESPHeader(spi=0xDEAD, seq=1),), payload=b"")
        da.node.send_ip(ipv4("10.0.2.2"), "esp", spoofed)
        sim.run(until=1)
        assert fw.dropped_esp == 1
        assert db.drops_esp == 0  # never even reached the end host

    def test_non_hip_traffic_unaffected(self, routed_pair):
        sim, mbox, da, db = routed_pair
        MiddleboxFirewall(mbox)
        ta, tb = TcpStack(da.node), TcpStack(db.node)
        got = {}

        def server():
            listener = tb.listen(80)
            conn = yield listener.accept()
            got["x"] = yield from conn.recv_bytes(5)

        def client():
            conn = yield sim.process(ta.open_connection(ipv4("10.0.2.2"), 80))
            conn.write(b"plain")

        sim.process(server())
        sim.process(client())
        sim.run(until=10)
        assert got.get("x") == b"plain"
