"""Seeded fuzzing of the DNS and Teredo wire codecs.

Built on :mod:`tests.wire_fuzz` — the same truncation/byte-flip/field-stomp
corpus the HIP codec runs — these prove the domain-error contract the
validation lints (VAL003) enforce statically: malformed wire input raises
``DnsDecodeError`` / ``TeredoParseError``, never a raw ``struct.error``
or ``IndexError``.
"""

from __future__ import annotations

import random
import struct

import pytest

from repro.net.addresses import ipv4, ipv6
from repro.net.dns import (
    DnsDecodeError,
    DnsRecord,
    decode_query,
    decode_response,
    encode_query,
    encode_response,
)
from repro.net.teredo import TeredoParseError, parse_ra
from tests.wire_fuzz import stomp_fields, sweep_byte_flips, sweep_truncations


def _query_corpus() -> list[bytes]:
    return [
        encode_query("www.example.com", "A", 7),
        encode_query("vm1.cloud.example", "HIP", 65535),
        encode_query("", "AAAA", 0),
    ]


def _response_corpus() -> list[bytes]:
    return [
        encode_response(7, [
            DnsRecord(name="h", rtype="A", ttl=60.0, address=ipv4("1.2.3.4")),
        ]),
        encode_response(8, [
            DnsRecord(name="v6", rtype="AAAA", ttl=60.0,
                      address=ipv6("2001:db8::1")),
        ]),
        encode_response(9, [
            DnsRecord(name="vm", rtype="HIP", ttl=30.0,
                      hit=ipv6("2001:10::42"), host_id=b"RSA:fakekey",
                      rvs=("rvs1.example", "rvs2.example")),
            DnsRecord(name="h", rtype="A", ttl=60.0, address=ipv4("1.2.3.4")),
        ]),
    ]


class TestDnsQueryFuzz:
    def test_truncations(self):
        for raw in _query_corpus():
            sweep_truncations(raw, decode_query, DnsDecodeError)

    def test_byte_flips(self):
        rng = random.Random(0xD15)
        for raw in _query_corpus():
            sweep_byte_flips(raw, decode_query, DnsDecodeError, rng)

    def test_field_stomps(self):
        rng = random.Random(0xD16)
        for raw in _query_corpus():
            stomp_fields(raw, decode_query, DnsDecodeError, rng)

    def test_bad_utf8_rejected(self):
        raw = struct.pack(">HB", 1, 0) + struct.pack(">H", 2) + b"\xff\xfe"
        raw += struct.pack(">H", 1) + b"A"
        with pytest.raises(DnsDecodeError):
            decode_query(raw)


class TestDnsResponseFuzz:
    def test_truncations(self):
        for raw in _response_corpus():
            sweep_truncations(raw, decode_response, DnsDecodeError)

    def test_byte_flips(self):
        rng = random.Random(0xE17)
        for raw in _response_corpus():
            sweep_byte_flips(raw, decode_response, DnsDecodeError, rng)

    def test_field_stomps(self):
        rng = random.Random(0xE18)
        for raw in _response_corpus():
            stomp_fields(raw, decode_response, DnsDecodeError, rng)


class TestTeredoRaFuzz:
    def _ra(self) -> bytes:
        return b"\x02" + ipv4("198.51.100.1").packed() + struct.pack(">H", 4242)

    def test_roundtrip(self):
        assert parse_ra(self._ra()) == (ipv4("198.51.100.1"), 4242)

    def test_truncations(self):
        sweep_truncations(self._ra(), parse_ra, TeredoParseError)

    def test_oversized_rejected(self):
        for extra in (1, 3, 64):
            with pytest.raises(TeredoParseError):
                parse_ra(self._ra() + b"\x00" * extra)
