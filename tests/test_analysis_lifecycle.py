"""Lifecycle leak-lint tests (LIF001-LIF003).

Seeded-broken fixtures (the rule must fire) with clean twins.  The LIF001
positive is the shape of the *actual* bug the pass caught in ``net/tcp.py``:
a delayed-ACK ``TimerHandle`` that teardown never cancelled.
"""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_source

PRODUCT = "src/repro/fake/module.py"
TESTCODE = "tests/test_fake.py"


def findings(source: str, rule: str, path: str = PRODUCT) -> list:
    return [
        f
        for f in analyze_source(textwrap.dedent(source), path, rules={rule})
        if not f.suppressed and f.rule == rule
    ]


# ------------------------------------------------------------------ LIF001 --


def test_lif001_uncancelled_timer():
    # The net/tcp.py delayed-ACK bug: armed in the data path, forgotten
    # by teardown.
    src = """
        class Connection:
            def _arm_delack(self):
                self._delack = self.sim.call_later(0.04, self._delack_fired)

            def _teardown(self):
                self.state = "CLOSED"
    """
    [finding] = findings(src, "LIF001")
    assert "_delack" in finding.message
    assert "Connection" in finding.message


def test_lif001_call_at_counts_too():
    src = """
        class Beacon:
            def start(self):
                self._tick = self.sim.call_at(1.0, self._fire)
    """
    [finding] = findings(src, "LIF001")
    assert "_tick" in finding.message


def test_lif001_clean_cancelled_in_close():
    src = """
        class Connection:
            def _arm_delack(self):
                self._delack = self.sim.call_later(0.04, self._delack_fired)

            def close(self):
                self._delack.cancel()
    """
    assert not findings(src, "LIF001")


def test_lif001_clean_local_handle():
    # A handle never stored on self makes no lifetime promise the class
    # must revoke.
    src = """
        class Connection:
            def ping(self):
                handle = self.sim.call_later(0.1, self._pong)
                return handle
    """
    assert not findings(src, "LIF001")


def test_lif001_silent_in_tests():
    src = """
        class Harness:
            def start(self):
                self._t = self.sim.call_later(1.0, self._fire)
    """
    assert not findings(src, "LIF001", path=TESTCODE)


# ------------------------------------------------------------------ LIF002 --


def test_lif002_registry_without_release():
    src = """
        class Daemon:
            def __init__(self):
                self.associations = {}

            def register(self, hit, assoc):
                self.associations[hit] = assoc
    """
    [finding] = findings(src, "LIF002")
    assert "associations" in finding.message


def test_lif002_grower_method_without_release():
    src = """
        class Tracker:
            def __init__(self):
                self.events = []

            def record(self, event):
                self.events.append(event)
    """
    [finding] = findings(src, "LIF002")
    assert "events" in finding.message


def test_lif002_defaultdict_counts_as_born_empty():
    src = """
        import collections

        class Flows:
            def __init__(self):
                self.by_port = collections.defaultdict(list)

            def track(self, port, flow):
                self.by_port[port] = flow
    """
    assert findings(src, "LIF002")


def test_lif002_clean_with_pop_path():
    src = """
        class Daemon:
            def __init__(self):
                self.associations = {}

            def register(self, hit, assoc):
                self.associations[hit] = assoc

            def expire(self, hit):
                self.associations.pop(hit, None)
    """
    assert not findings(src, "LIF002")


def test_lif002_clean_with_del_path():
    src = """
        class Daemon:
            def __init__(self):
                self.associations = {}

            def register(self, hit, assoc):
                self.associations[hit] = assoc

            def expire(self, hit):
                del self.associations[hit]
    """
    assert not findings(src, "LIF002")


def test_lif002_clean_with_rebind_reset():
    src = """
        class Batch:
            def __init__(self):
                self.pending = []

            def add(self, item):
                self.pending.append(item)

            def flush(self):
                out, self.pending = self.pending, []
                return out
    """
    assert not findings(src, "LIF002")


def test_lif002_clean_nonempty_start():
    # Pre-populated tables are configuration, not an acquire path.
    src = """
        class Router:
            def __init__(self):
                self.routes = {"default": None}

            def learn(self, prefix, hop):
                self.routes[prefix] = hop
    """
    assert not findings(src, "LIF002")


# ------------------------------------------------------------------ LIF003 --


def test_lif003_tap_installed_without_removal():
    src = """
        def install(tap):
            WIRE_TAPS.append(tap)
    """
    [finding] = findings(src, "LIF003")
    assert "WIRE_TAPS" in finding.message


def test_lif003_fires_in_tests_too():
    # Tests are exactly where taps leak between cases.
    src = """
        def test_something(tap):
            CAUSALITY_TAPS.append(tap)
            assert run() == 0
    """
    assert findings(src, "LIF003", path=TESTCODE)


def test_lif003_attribute_tap_list():
    src = """
        def install(shard_mod, tap):
            shard_mod.CAUSALITY_TAPS.append(tap)
    """
    [finding] = findings(src, "LIF003")
    assert "CAUSALITY_TAPS" in finding.message


def test_lif003_clean_try_finally_pairing():
    # The contextmanager idiom: append, yield, finally-remove — all one
    # function scope.
    src = """
        from contextlib import contextmanager

        @contextmanager
        def wire_sanitizer(tap):
            WIRE_TAPS.append(tap)
            try:
                yield tap
            finally:
                WIRE_TAPS.remove(tap)
    """
    assert not findings(src, "LIF003")


def test_lif003_nested_function_is_its_own_scope():
    # A removal inside a *nested* function does not pair with the outer
    # append: the outer scope still leaks if the inner never runs.
    src = """
        def install(tap):
            WIRE_TAPS.append(tap)

            def undo():
                WIRE_TAPS.remove(tap)
            return undo
    """
    assert findings(src, "LIF003")


def test_lif003_clean_non_tap_lists():
    src = """
        def collect(items, out):
            out.append(items)
    """
    assert not findings(src, "LIF003")
