"""Cost-model and crypto-meter tests."""

import pytest

from repro.crypto.costmodel import CostModel, CryptoMeter


class TestCostModel:
    def test_rsa_scaling_laws(self):
        cm = CostModel()
        # Private ops ~cubic, public ~quadratic in modulus size.
        assert cm.rsa_sign(2048) == pytest.approx(cm.rsa_sign_1024 * 8)
        assert cm.rsa_verify(2048) == pytest.approx(cm.rsa_verify_1024 * 4)
        assert cm.dh_modexp(3072) == pytest.approx(cm.dh_modexp_1536 * 8)

    def test_sign_much_more_expensive_than_verify(self):
        cm = CostModel()
        assert cm.rsa_sign(1024) > 5 * cm.rsa_verify(1024)

    def test_esp_cost_monotone_in_bytes(self):
        cm = CostModel()
        assert cm.esp_encrypt_cost(1500) > cm.esp_encrypt_cost(100)
        assert cm.esp_decrypt_cost(0) >= cm.esp_decap_fixed

    def test_tls_and_esp_share_symmetric_costs(self):
        """Structural parity behind the paper's HIP~SSL claim."""
        cm = CostModel()
        esp = cm.esp_encrypt_cost(1400) - cm.esp_encap_fixed
        tls = cm.tls_record_cost(1400) - cm.tls_record_fixed
        assert esp == pytest.approx(tls, rel=0.01)

    def test_scaled(self):
        cm = CostModel().scaled(2.0)
        assert cm.rsa_sign_1024 == CostModel().rsa_sign_1024 * 2
        assert cm.aes128_per_byte == CostModel().aes128_per_byte * 2
        with pytest.raises(ValueError):
            CostModel().scaled(0)

    def test_puzzle_costs(self):
        cm = CostModel()
        assert cm.puzzle_solve_cost(10) == pytest.approx(
            1024 * cm.hash_cost(48, "sha1")
        )
        assert cm.puzzle_solve_cost(10, attempts=3) == pytest.approx(
            3 * cm.hash_cost(48, "sha1")
        )
        assert cm.puzzle_verify_cost() == pytest.approx(cm.hash_cost(48, "sha1"))

    def test_hash_alg_selection(self):
        cm = CostModel()
        assert cm.hash_cost(1000, "sha256") > cm.hash_cost(1000, "sha1")

    def test_calibrate_produces_self_consistent_model(self):
        cm = CostModel.calibrate()
        # Live pure-Python timings: relative ordering must hold.
        assert cm.rsa_sign_1024 > cm.rsa_verify_1024
        assert cm.rsa_sign_2048 > cm.rsa_sign_1024
        assert cm.aes128_per_byte > 0
        assert cm.sha1_per_byte > 0


class TestCryptoMeter:
    def test_charge_accumulates(self):
        meter = CryptoMeter()
        meter.charge("asym.sign", 0.5)
        meter.charge("asym.sign", 0.25)
        meter.charge("sym.aes", 0.1, count=10)
        assert meter.ops == {"asym.sign": 2, "sym.aes": 10}
        assert meter.seconds["asym.sign"] == pytest.approx(0.75)
        assert meter.total_seconds == pytest.approx(0.85)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            CryptoMeter().charge("x", -1.0)

    def test_prefix_queries(self):
        meter = CryptoMeter()
        meter.charge("asym.sign.i2", 1.0)
        meter.charge("asym.verify.r2", 2.0)
        meter.charge("esp.encrypt", 0.5)
        assert meter.total_ops("asym.") == 2
        assert meter.seconds_by("asym.") == pytest.approx(3.0)
        assert meter.seconds_by("esp.") == pytest.approx(0.5)

    def test_merged(self):
        m1, m2 = CryptoMeter(), CryptoMeter()
        m1.charge("a", 1.0)
        m2.charge("a", 2.0)
        m2.charge("b", 3.0)
        merged = m1.merged(m2)
        assert merged.seconds["a"] == pytest.approx(3.0)
        assert merged.seconds["b"] == pytest.approx(3.0)
        # Originals untouched.
        assert m1.seconds["a"] == 1.0
