"""Shard-aware placement planner: determinism, anchors, balance, quality."""

import pytest

from repro.net.topology import PlacementPlan, plan_shard_placement


def ring_edges(members, weight=1.0):
    n = len(members)
    return [
        (members[i], members[(i + 1) % n], weight)
        for i in range(n)
        if n > 1 and (n != 2 or i == 0)
    ]


def test_disjoint_cliques_land_on_separate_shards():
    """Two groups that only talk internally must not be split or mixed."""
    a = [f"a{i}" for i in range(3)]
    b = [f"b{i}" for i in range(3)]
    plan = plan_shard_placement(a + b, ring_edges(a) + ring_edges(b), 2)
    assert len({plan.shard_of(x) for x in a}) == 1
    assert len({plan.shard_of(x) for x in b}) == 1
    assert plan.shard_of("a0") != plan.shard_of("b0")
    quality = plan.quality()
    assert quality["cross_edges"] == 0
    assert quality["cross_weight_fraction"] == 0.0
    assert quality["load_imbalance"] == pytest.approx(0.0)


def test_plan_is_deterministic():
    items = [f"v{i}" for i in range(12)]
    edges = ring_edges(items[:6]) + ring_edges(items[6:])
    first = plan_shard_placement(items, edges, 3)
    second = plan_shard_placement(items, edges, 3)
    assert first.assignment == second.assignment
    assert first.quality() == second.quality()


def test_anchors_are_pinned():
    items = ["x", "y", "z"]
    edges = [("x", "y", 5.0), ("y", "z", 5.0)]
    plan = plan_shard_placement(
        items, edges, 2, anchors={"x": 1}, balance_tolerance=10.0
    )
    assert plan.shard_of("x") == 1
    # With a generous cap the whole chain follows its anchor.
    assert plan.shard_of("y") == 1
    assert plan.shard_of("z") == 1


def test_balance_cap_splits_oversized_groups():
    """A clique that exceeds the per-shard cap must spill onto other shards
    rather than pile onto one."""
    items = [f"v{i}" for i in range(8)]
    edges = [
        (items[i], items[j], 1.0)
        for i in range(8)
        for j in range(i + 1, 8)
    ]
    plan = plan_shard_placement(items, edges, 2, balance_tolerance=0.25)
    loads = plan.quality()["shard_load"]
    assert max(loads) <= 8 / 2 * 1.25 + 1e-9


def test_weighted_items_balance_by_weight():
    items = ["big", "s1", "s2", "s3", "s4"]
    weights = {"big": 4.0, "s1": 1.0, "s2": 1.0, "s3": 1.0, "s4": 1.0}
    plan = plan_shard_placement(items, [], 2, weights=weights)
    loads = plan.quality()["shard_load"]
    assert sorted(loads) == [4.0, 4.0]


def test_unknown_edge_item_rejected():
    with pytest.raises(ValueError):
        plan_shard_placement(["a"], [("a", "ghost", 1.0)], 2)


def test_bad_anchor_rejected():
    with pytest.raises(ValueError):
        plan_shard_placement(["a"], [], 2, anchors={"a": 5})
    with pytest.raises(ValueError):
        plan_shard_placement(["a"], [], 2, anchors={"ghost": 0})


def test_quality_reports_cut():
    assignment = {"a": 0, "b": 1}
    plan = PlacementPlan(
        n_shards=2,
        assignment=assignment,
        edges=[("a", "b", 2.0)],
        weights={"a": 1.0, "b": 1.0},
    )
    quality = plan.quality()
    assert quality["cross_edges"] == 1
    assert quality["cross_weight"] == 2.0
    assert quality["cross_weight_fraction"] == 1.0
