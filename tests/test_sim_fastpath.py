"""Engine fast-path tests: the raw callback lane and cross-lane ordering.

Covers the scheduling contract the dataplane fast path is built on:
``call_later``/``call_at`` handles (validation, cancellation, rearm),
same-timestamp FIFO interleaving between the Event lane and the callback
lane, ``close()`` with pending raw callbacks, and already-processed Event
resume/failure semantics in both engine modes.
"""

import pytest

from repro.metrics import METRICS
from repro.sim import Simulator
from repro.sim.engine import TimerHandle


# -- call_later / call_at basics ----------------------------------------------

def test_call_later_fires_without_arg(sim):
    fired = []
    sim.call_later(1.5, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [1.5]


def test_call_later_passes_arg(sim):
    fired = []
    sim.call_later(0.5, fired.append, "payload")
    sim.run()
    assert fired == ["payload"]


def test_call_later_returns_handle(sim):
    handle = sim.call_later(2.0, lambda: None)
    assert isinstance(handle, TimerHandle)
    assert handle.active
    assert handle.when == 2.0


def test_call_later_validates_callable(sim):
    with pytest.raises(TypeError):
        sim.call_later(1.0, "not-callable")


def test_call_later_rejects_negative_delay(sim):
    with pytest.raises(ValueError):
        sim.call_later(-0.1, lambda: None)


def test_call_at_fires_at_absolute_time(sim):
    fired = []

    def proc():
        yield sim.timeout(1.0)
        sim.call_at(3.0, lambda: fired.append(sim.now))

    sim.process(proc())
    sim.run()
    assert fired == [3.0]


def test_call_at_returns_cancellable_handle(sim):
    fired = []
    handle = sim.call_at(2.0, fired.append, "x")
    assert isinstance(handle, TimerHandle)
    assert handle.when == 2.0
    assert handle.cancel() is True
    sim.run()
    assert fired == []


def test_call_at_validates_callable(sim):
    with pytest.raises(TypeError):
        sim.call_at(1.0, 42)


def test_call_at_rejects_past(sim):
    def proc():
        yield sim.timeout(5.0)
        sim.call_at(1.0, lambda: None)

    sim.process(proc())
    with pytest.raises(RuntimeError):  # surfaced as an unhandled crash
        sim.run()


# -- cancellation and rearm ---------------------------------------------------

def test_cancel_prevents_firing_and_is_idempotent(sim):
    fired = []
    handle = sim.call_later(1.0, lambda: fired.append("boom"))
    assert handle.cancel() is True
    assert handle.cancel() is False  # already cancelled
    assert not handle.active
    sim.run()
    assert fired == []


def test_cancel_after_fire_returns_false(sim):
    fired = []
    handle = sim.call_later(1.0, lambda: fired.append("tick"))
    sim.run()
    assert fired == ["tick"]
    assert not handle.active
    assert handle.cancel() is False


def test_rearm_moves_firing_time(sim):
    fired = []
    handle = sim.call_later(1.0, lambda: fired.append(sim.now))
    handle.rearm(4.0)  # supersedes the pending 1.0 entry
    assert handle.when == 4.0
    sim.run()
    assert fired == [4.0]  # exactly once, at the rearmed time


def test_rearm_after_fire_reactivates(sim):
    fired = []
    handle = sim.call_later(1.0, lambda: fired.append(sim.now))
    sim.run()
    handle.rearm(2.0)
    sim.run()
    assert fired == [1.0, 3.0]


def test_rearm_rejects_negative_delay(sim):
    handle = sim.call_later(1.0, lambda: None)
    with pytest.raises(ValueError):
        handle.rearm(-1.0)


# -- cross-lane ordering ------------------------------------------------------

def test_same_timestamp_fifo_across_lanes(sim):
    """Equal-time entries fire in scheduling order regardless of lane."""
    order = []
    # Interleave Event-lane entries (bare Timeouts with observer callbacks)
    # with callback-lane timers, all due at t=1.0.
    t0 = sim.timeout(1.0)
    t0.callbacks.append(lambda evt: order.append("evt0"))
    sim.call_later(1.0, lambda: order.append("cb1"))
    t2 = sim.timeout(1.0)
    t2.callbacks.append(lambda evt: order.append("evt2"))
    sim.call_later(1.0, lambda: order.append("cb3"))
    sim.run()
    assert order == ["evt0", "cb1", "evt2", "cb3"]


def test_cancelled_entry_does_not_disturb_fifo(sim):
    order = []
    sim.call_later(1.0, lambda: order.append("a"))
    doomed = sim.call_later(1.0, lambda: order.append("doomed"))
    sim.call_later(1.0, lambda: order.append("b"))
    doomed.cancel()
    sim.run()
    assert order == ["a", "b"]


def test_callbacks_scheduled_during_dispatch_keep_fifo(sim):
    order = []

    def first():
        order.append("first")
        sim.call_later(0.0, lambda: order.append("nested"))

    sim.call_later(1.0, first)
    sim.call_later(1.0, lambda: order.append("second"))
    sim.run()
    assert order == ["first", "second", "nested"]


# -- close() with pending callbacks -------------------------------------------

def test_close_discards_pending_callbacks(sim):
    fired = []
    sim.call_later(1.0, lambda: fired.append("late"))
    sim.call_later(2.0, lambda: fired.append("later"))
    sim.close()
    assert fired == []
    assert sim.peek() == float("inf")  # heap dropped


# -- already-processed Event semantics, both engine modes ---------------------

@pytest.mark.parametrize("fast", [False, True])
def test_yield_already_processed_success(fast):
    sim = Simulator(fast_path=fast)
    evt = sim.event()
    evt.succeed("ready")
    got = []

    def proc():
        yield sim.timeout(1.0)  # evt is PROCESSED by now
        value = yield evt
        got.append(value)

    sim.process(proc())
    sim.run()
    sim.close()
    assert got == ["ready"]


@pytest.mark.parametrize("fast", [False, True])
def test_yield_already_failed_event_crashes_via_fail(fast):
    """An uncaught already-processed failure gets full fail()/crash accounting."""
    sim = Simulator(fast_path=fast)
    evt = sim.event()
    evt.fail(RuntimeError("boom"))
    crashes = METRICS.counter("sim.process_crashes")
    before = crashes.value

    def victim():
        yield sim.timeout(1.0)  # evt is PROCESSED by now
        yield evt  # raises RuntimeError("boom"), uncaught

    proc = sim.process(victim(), name="victim")
    with pytest.raises(RuntimeError, match="victim"):
        sim.run()
    sim.close()
    assert crashes.value == before + 1
    assert proc.triggered and not proc.ok  # fail() semantics, not a bare raise
    assert isinstance(proc.value, RuntimeError)


@pytest.mark.parametrize("fast", [False, True])
def test_yield_already_failed_event_caught_by_waiter(fast):
    """A watcher waiting on the failing process sees the exception, no crash."""
    sim = Simulator(fast_path=fast)
    evt = sim.event()
    evt.fail(ValueError("expected"))
    seen = []

    def victim():
        yield sim.timeout(1.0)
        yield evt

    def watcher(proc):
        try:
            yield proc
        except ValueError as exc:
            seen.append(str(exc))

    proc = sim.process(victim())
    sim.process(watcher(proc))
    sim.run()  # no unhandled crash: the watcher consumed the failure
    sim.close()
    assert seen == ["expected"]


@pytest.mark.parametrize("fast", [False, True])
def test_mode_equivalent_ordering(fast):
    """The same program produces the same trace in both engine modes."""
    sim = Simulator(fast_path=fast)
    order = []

    def worker(name, delay):
        yield sim.timeout(delay)
        order.append((name, sim.now))
        sim.call_later(0.5, lambda: order.append((name + "-cb", sim.now)))

    sim.process(worker("a", 1.0))
    sim.process(worker("b", 1.0))
    sim.process(worker("c", 2.0))
    sim.run()
    sim.close()
    assert order == [
        ("a", 1.0), ("b", 1.0), ("a-cb", 1.5), ("b-cb", 1.5),
        ("c", 2.0), ("c-cb", 2.5),
    ]
