"""TLS handshake / record layer and SSL-VPN tunnel tests."""

import random

import pytest

from repro.crypto.rsa import RsaKeyPair
from repro.net.addresses import IPAddress, ipv4
from repro.net.packet import VirtualPayload
from repro.net.tcp import TcpStack
from repro.net.topology import lan_pair
from repro.sim import Simulator
from repro.tls import (
    TlsError,
    TlsServerContext,
    tls_client_handshake,
    tls_server_handshake,
)
from repro.tls.vpn import SslVpnDaemon, VPN_SUBNET, VpnError

A, B = ipv4("10.0.0.1"), ipv4("10.0.0.2")


@pytest.fixture(scope="module")
def server_keypair():
    return RsaKeyPair.generate(512, random.Random(77))


@pytest.fixture
def tls_net(sim, server_keypair):
    a, b = lan_pair(sim, "client", "server")
    ta, tb = TcpStack(a), TcpStack(b)
    ctx = TlsServerContext(keypair=server_keypair)
    return sim, a, b, ta, tb, ctx


def run_handshake(sim, a, b, ta, tb, ctx, session=None):
    """Returns (client_tls, server_tls) after a completed handshake."""
    result = {}
    listener = tb._listeners.get(443) or tb.listen(443)

    def server():
        conn = yield listener.accept()
        result["server"] = yield from tls_server_handshake(conn, b, ctx, random.Random(5))

    def client():
        conn = yield sim.process(ta.open_connection(B, 443))
        result["client"] = yield from tls_client_handshake(
            conn, a, random.Random(6), session=session
        )

    sim.process(server())
    proc = sim.process(client())
    sim.run(until=proc)
    sim.run(until=sim.now + 1)
    return result["client"], result["server"]


class TestHandshake:
    def test_full_handshake_derives_shared_master(self, tls_net):
        sim, a, b, ta, tb, ctx = tls_net
        cli, srv = run_handshake(sim, a, b, ta, tb, ctx)
        assert cli.master_secret == srv.master_secret
        assert not cli.resumed and not srv.resumed
        assert len(cli.session_id) == 16

    def test_full_handshake_does_rsa(self, tls_net):
        sim, a, b, ta, tb, ctx = tls_net
        cli, srv = run_handshake(sim, a, b, ta, tb, ctx)
        assert cli.meter.ops.get("asym.encrypt.premaster") == 1
        assert srv.meter.ops.get("asym.decrypt.premaster") == 1

    def test_resumed_handshake_skips_rsa(self, tls_net):
        sim, a, b, ta, tb, ctx = tls_net
        cli, _ = run_handshake(sim, a, b, ta, tb, ctx)
        cli2, srv2 = run_handshake(
            sim, a, b, ta, tb, ctx, session=(cli.session_id, cli.master_secret)
        )
        assert cli2.resumed and srv2.resumed
        assert cli2.master_secret == cli.master_secret
        assert "asym.encrypt.premaster" not in cli2.meter.ops
        assert "asym.decrypt.premaster" not in srv2.meter.ops

    def test_unknown_session_falls_back_to_full(self, tls_net):
        sim, a, b, ta, tb, ctx = tls_net
        fake_session = (b"\x99" * 16, b"\x01" * 48)
        cli, srv = run_handshake(sim, a, b, ta, tb, ctx, session=fake_session)
        assert not cli.resumed
        assert cli.master_secret == srv.master_secret


class TestRecords:
    def _connected(self, tls_net):
        sim, a, b, ta, tb, ctx = tls_net
        cli, srv = run_handshake(sim, a, b, ta, tb, ctx)
        return sim, cli, srv

    def test_real_bytes_roundtrip(self, tls_net):
        sim, cli, srv = self._connected(tls_net)
        out = {}

        def sender():
            yield from cli.write(b"attack at dawn")

        def receiver():
            out["msg"] = yield from srv.recv_bytes(14)

        sim.process(sender())
        sim.process(receiver())
        sim.run(until=sim.now + 5)
        assert out["msg"] == b"attack at dawn"

    def test_ciphertext_on_the_wire(self, tls_net):
        """The TCP payload between the peers is not the plaintext."""
        sim, a, b, ta, tb, ctx = tls_net
        cli, srv = run_handshake(sim, a, b, ta, tb, ctx)
        wire_chunks = []
        endpoint = a.interface("eth0")._endpoint
        original = endpoint.send

        def spy(packet):
            wire_chunks.append(packet)
            return original(packet)

        endpoint.send = spy

        def sender():
            yield from cli.write(b"SECRET-PAYLOAD")

        sim.process(sender())
        sim.run(until=sim.now + 5)
        for packet in wire_chunks:
            payload = packet.payload
            while hasattr(payload, "payload"):
                payload = payload.payload
            if isinstance(payload, (bytes, bytearray)):
                assert b"SECRET-PAYLOAD" not in bytes(payload)

    def test_virtual_payload_roundtrip_exact_length(self, tls_net):
        sim, cli, srv = self._connected(tls_net)
        out = {}

        def sender():
            yield from cli.write(VirtualPayload(123_456))

        def receiver():
            out["msg"] = yield from srv.recv_bytes(123_456)

        sim.process(sender())
        sim.process(receiver())
        sim.run(until=sim.now + 20)
        assert isinstance(out["msg"], VirtualPayload)
        assert len(out["msg"]) == 123_456

    def test_record_costs_charged(self, tls_net):
        sim, cli, srv = self._connected(tls_net)

        def sender():
            yield from cli.write(VirtualPayload(50_000))

        def receiver():
            yield from srv.recv_bytes(50_000)

        sim.process(sender())
        sim.process(receiver())
        sim.run(until=sim.now + 20)
        assert cli.meter.seconds_by("tls.record.out") > 0
        assert srv.meter.seconds_by("tls.record.in") > 0

    def test_bidirectional_records(self, tls_net):
        sim, cli, srv = self._connected(tls_net)
        out = {}

        def client_side():
            yield from cli.write(b"ping")
            out["reply"] = yield from cli.recv_bytes(4)

        def server_side():
            data = yield from srv.recv_bytes(4)
            yield from srv.write(bytes(reversed(bytes(data))))

        sim.process(client_side())
        sim.process(server_side())
        sim.run(until=sim.now + 5)
        assert out["reply"] == b"gnip"


class TestSslVpn:
    @pytest.fixture
    def vpn_pair(self, sim, server_keypair):
        a, b = lan_pair(sim, "a", "b")
        key_a = server_keypair
        key_b = RsaKeyPair.generate(512, random.Random(88))
        vpn_a_addr = IPAddress(4, VPN_SUBNET.network.value + 10)
        vpn_b_addr = IPAddress(4, VPN_SUBNET.network.value + 11)
        va = SslVpnDaemon(a, vpn_a_addr, key_a, rng=random.Random(1))
        vb = SslVpnDaemon(b, vpn_b_addr, key_b, rng=random.Random(2))
        va.add_peer(vpn_b_addr, B, key_b.public)
        vb.add_peer(vpn_a_addr, A, key_a.public)
        return sim, a, b, va, vb

    def test_tunnel_establishes(self, vpn_pair, drive):
        sim, a, b, va, vb = vpn_pair
        tunnel = drive(sim, va.connect(vb.vpn_addr))
        assert tunnel.is_established
        # Both ends derived the same master secret from the real RSA exchange.
        assert tunnel.master_secret == vb.tunnels[va.vpn_addr].master_secret

    def test_tcp_through_tunnel(self, vpn_pair):
        sim, a, b, va, vb = vpn_pair
        ta, tb = TcpStack(a), TcpStack(b)
        got = {}

        def server():
            listener = tb.listen(80)
            conn = yield listener.accept()
            got["data"] = yield from conn.recv_bytes(10)
            got["peer"] = conn.remote_addr

        def client():
            conn = yield sim.process(ta.open_connection(vb.vpn_addr, 80))
            conn.write(b"vpn bytes!")

        sim.process(server())
        sim.process(client())
        sim.run(until=30)
        assert got.get("data") == b"vpn bytes!"
        assert got.get("peer") == va.vpn_addr  # server sees tunnel addressing

    def test_unknown_peer_fails(self, vpn_pair):
        sim, a, b, va, vb = vpn_pair
        stranger = IPAddress(4, VPN_SUBNET.network.value + 99)

        def flow():
            with pytest.raises(VpnError):
                yield from va.connect(stranger, timeout=5.0)
            return True

        proc = sim.process(flow())
        assert sim.run(until=proc) is True

    def test_first_packets_queued_not_dropped(self, vpn_pair):
        sim, a, b, va, vb = vpn_pair
        from repro.net.icmp import IcmpStack, ping

        icmp_a, _ = IcmpStack(a), IcmpStack(b)
        proc = sim.process(ping(icmp_a, vb.vpn_addr, count=2, interval=0.05,
                                timeout=10.0))
        rtts = sim.run(until=proc)
        assert all(r is not None for r in rtts)

    def test_per_packet_costs_metered(self, vpn_pair):
        sim, a, b, va, vb = vpn_pair
        from repro.net.icmp import IcmpStack, ping

        icmp_a, _ = IcmpStack(a), IcmpStack(b)
        proc = sim.process(ping(icmp_a, vb.vpn_addr, count=5, timeout=10.0))
        sim.run(until=proc)
        assert va.meter.ops.get("vpn.record.out", 0) >= 5
        assert vb.meter.ops.get("vpn.record.in", 0) >= 5
        assert va.meter.ops.get("vpn.asym.encrypt") == 1  # handshake once

    def test_address_validation(self, sim, server_keypair):
        node = Simulator and lan_pair(sim, "x", "y")[0]
        with pytest.raises(ValueError):
            SslVpnDaemon(node, ipv4("9.9.9.9"), server_keypair, rng=random.Random(1))


class TestMalformedHandshake:
    """Regressions for the handshake length guards: a hostile peer's
    crafted message must raise TlsError, never silently truncate session
    ids / randoms (the old behaviour) or escape a struct.error."""

    def _server_error(self, tls_net, body, mtype=None):
        """Drive tls_server_handshake against one raw client message."""
        import struct as _struct

        from repro.tls.connection import CLIENT_HELLO

        sim, a, b, ta, tb, ctx = tls_net
        listener = tb._listeners.get(443) or tb.listen(443)
        out = {}

        def server():
            conn = yield listener.accept()
            try:
                yield from tls_server_handshake(conn, b, ctx, random.Random(5))
            except TlsError as exc:
                out["error"] = exc

        def client():
            conn = yield sim.process(ta.open_connection(B, 443))
            code = CLIENT_HELLO if mtype is None else mtype
            conn.write(_struct.pack(">BHH", 22, code, len(body)) + body)

        sim.process(server())
        sim.process(client())
        sim.run(until=sim.now + 5)
        return out.get("error")

    def _client_error(self, tls_net, messages):
        """Drive tls_client_handshake against raw server messages."""
        import struct as _struct

        sim, a, b, ta, tb, _ctx = tls_net
        listener = tb._listeners.get(443) or tb.listen(443)
        out = {}

        def server():
            conn = yield listener.accept()
            for mtype, body in messages:
                conn.write(_struct.pack(">BHH", 22, mtype, len(body)) + body)

        def client():
            conn = yield sim.process(ta.open_connection(B, 443))
            try:
                yield from tls_client_handshake(conn, a, random.Random(6))
            except TlsError as exc:
                out["error"] = exc

        sim.process(server())
        sim.process(client())
        sim.run(until=sim.now + 5)
        return out.get("error")

    def test_short_client_hello_rejected(self, tls_net):
        err = self._server_error(tls_net, b"\x00")
        assert err is not None and "too short" in str(err)

    def test_client_hello_inflated_sid_len_rejected(self, tls_net):
        import struct as _struct

        # Claims a 64-byte session id but carries only 32 bytes of body:
        # the old code silently truncated and ran the PRF on an empty
        # client_random.
        body = _struct.pack(">H", 64) + b"\x00" * 32
        err = self._server_error(tls_net, body)
        assert err is not None and "length mismatch" in str(err)

    def test_short_server_hello_rejected(self, tls_net):
        from repro.tls.connection import SERVER_HELLO

        err = self._client_error(tls_net, [(SERVER_HELLO, b"\x01")])
        assert err is not None and "too short" in str(err)

    def test_server_hello_inflated_sid_len_rejected(self, tls_net):
        import struct as _struct

        from repro.tls.connection import SERVER_HELLO

        body = _struct.pack(">H", 200) + b"\x00" * 33
        err = self._client_error(tls_net, [(SERVER_HELLO, body)])
        assert err is not None and "length mismatch" in str(err)

    def test_certificate_key_overrun_rejected(self, tls_net):
        import struct as _struct

        from repro.tls.connection import CERTIFICATE, SERVER_HELLO

        sid = b"\x11" * 16
        hello = _struct.pack(">H", len(sid)) + sid + b"\x22" * 32 + b"\x00"
        cert = _struct.pack(">H", 1000) + b"\x00" * 10  # key_len past the end
        err = self._client_error(
            tls_net, [(SERVER_HELLO, hello), (CERTIFICATE, cert)]
        )
        assert err is not None and "runs past end" in str(err)

    def test_short_record_body_rejected(self, tls_net):
        import struct as _struct

        sim, a, b, ta, tb, ctx = tls_net
        cli, srv = run_handshake(sim, a, b, ta, tb, ctx)
        out = {}

        # A real-bytes record shorter than IV + MAC used to slice into
        # nonsense and fail deep inside CBC; now it is rejected up front.
        srv.conn.write(_struct.pack(">BHH", 23, 0, 10) + b"\x00" * 10)

        def receiver():
            try:
                yield from cli.recv_record()
            except TlsError as exc:
                out["error"] = exc

        sim.process(receiver())
        sim.run(until=sim.now + 5)
        assert "too short" in str(out.get("error"))
