"""HIP mobility (UPDATE), rendezvous and DNS-proxy tests."""

import random

import pytest

from repro.hip.daemon import HipDaemon
from repro.hip.dnsproxy import HipDnsProxy, publish_hip_host
from repro.hip.identity import HostIdentity
from repro.hip.rendezvous import RendezvousServer, register_with_rvs
from repro.net.addresses import ipv4, is_hit, is_lsi, prefix
from repro.net.dns import DnsResolver, DnsServer, Zone
from repro.net.icmp import IcmpStack, ping
from repro.net.node import Node
from repro.net.tcp import TcpStack
from repro.net.topology import wire
from repro.net.udp import UdpStack
from repro.sim import Simulator


@pytest.fixture
def tri_net(sim, session_identities):
    """Three HIP hosts on a star around a router, each with two addresses
    available for mobility experiments."""
    router = Node(sim, "router", forwarding=True)
    hosts = {}
    daemons = {}
    addrs = {"a": "10.0.1.2", "b": "10.0.2.2", "c": "10.0.3.2"}
    for i, name in enumerate(("a", "b", "c")):
        node = Node(sim, name)
        iface, r_if, _ = wire(sim, node, router, addr_a=ipv4(addrs[name]),
                              delay_s=1e-3)
        node.routes.add(prefix("0.0.0.0/0"), iface)
        router.routes.add(prefix(f"10.0.{i + 1}.0/24"), r_if)
        hosts[name] = node
        daemons[name] = HipDaemon(
            node, session_identities[name], rng=random.Random(i + 1)
        )
    for x in ("a", "b", "c"):
        for y in ("a", "b", "c"):
            if x != y:
                daemons[x].add_peer(daemons[y].hit, [ipv4(addrs[y])])
    return sim, router, hosts, daemons, addrs


class TestMobility:
    def test_locator_update_survives_readdress(self, tri_net, drive):
        sim, router, hosts, daemons, addrs = tri_net
        da, db = daemons["a"], daemons["b"]
        drive(sim, da.associate(db.hit))

        # Host a moves: new address on a new interface, reachable via router.
        new_addr = ipv4("10.0.9.2")
        node_a = hosts["a"]
        iface, r_if, _ = wire(sim, node_a, router, addr_a=new_addr, delay_s=1e-3)
        router.routes.add(prefix("10.0.9.0/24"), r_if)
        node_a.routes.add(prefix("0.0.0.0/0"), iface)
        da.move_to(new_addr)
        sim.run(until=sim.now + 5)

        # Peer must now address us at the new locator...
        assert db.assocs[da.hit].peer_locator == new_addr
        # ...and data still flows over the association.
        icmp_b, _ = IcmpStack(hosts["b"]), IcmpStack(node_a)
        rtts = drive(sim, ping(icmp_b, da.hit, count=2, interval=0.01))
        assert all(r is not None for r in rtts)

    def test_update_requires_valid_hmac(self, tri_net, drive):
        sim, router, hosts, daemons, addrs = tri_net
        da, db = daemons["a"], daemons["b"]
        drive(sim, da.associate(db.hit))
        assoc_at_b = db.assocs[da.hit]
        original = assoc_at_b.peer_locator
        # Forge an UPDATE with a bad HMAC by corrupting a's key first.
        from repro.hip import packets as hp
        from repro.crypto.hmac_kdf import hmac_digest

        forged = hp.HipPacket(packet_type=hp.UPDATE, sender_hit=da.hit,
                              receiver_hit=db.hit)
        forged.add(hp.LOCATOR, hp.build_locator([(ipv4("10.0.66.6"), 120.0)]))
        forged.add(hp.SEQ, hp.build_seq(999))
        forged.add(hp.HMAC_PARAM, b"\x00" * 20)
        forged.add(hp.HIP_SIGNATURE, b"\x00" * 64)
        da._send_control(forged, ipv4(addrs["b"]))
        sim.run(until=sim.now + 3)
        assert assoc_at_b.peer_locator == original  # forgery ignored

    def test_verified_address_committed_only_after_echo(self, tri_net, drive):
        sim, router, hosts, daemons, addrs = tri_net
        da, db = daemons["a"], daemons["b"]
        drive(sim, da.associate(db.hit))
        # Announce an address where a is NOT reachable: the nonce echo can
        # never return, so b must keep the old locator.
        da.move_to(ipv4("10.0.77.7"))
        sim.run(until=sim.now + 5)
        assert db.assocs[da.hit].peer_locator == ipv4(addrs["a"])


class TestRendezvous:
    def test_i1_relay_establishes_association(self, tri_net, drive):
        sim, router, hosts, daemons, addrs = tri_net
        rvs = RendezvousServer(daemons["c"])
        # b registers with the RVS.
        drive(sim, register_with_rvs(daemons["b"], daemons["c"].hit,
                                     ipv4(addrs["c"])))
        sim.run(until=sim.now + 2)
        assert rvs.registered_locator(daemons["b"].hit) == ipv4(addrs["b"])

        # a only knows b via the RVS locator.
        da = daemons["a"]
        da.hosts[daemons["b"].hit] = [ipv4(addrs["c"])]
        assoc = drive(sim, da.associate(daemons["b"].hit))
        assert assoc.is_established
        assert rvs.relayed_i1 >= 1
        # After R1, the exchange runs direct: a talks to b's real address.
        assert assoc.peer_locator == ipv4(addrs["b"])

    def test_unregistered_hit_not_relayed(self, tri_net, drive):
        sim, router, hosts, daemons, addrs = tri_net
        RendezvousServer(daemons["c"])
        da = daemons["a"]
        from repro.hip.daemon import HipError

        da.hosts[daemons["b"].hit] = [ipv4(addrs["c"])]  # b never registered

        def flow():
            with pytest.raises(HipError):
                yield from da.associate(daemons["b"].hit, timeout=8.0)
            return True

        proc = sim.process(flow())
        assert sim.run(until=proc) is True

    def test_deregister(self, tri_net, drive):
        sim, router, hosts, daemons, addrs = tri_net
        rvs = RendezvousServer(daemons["c"])
        drive(sim, register_with_rvs(daemons["b"], daemons["c"].hit,
                                     ipv4(addrs["c"])))
        sim.run(until=sim.now + 2)
        rvs.deregister(daemons["b"].hit)
        assert rvs.registered_locator(daemons["b"].hit) is None


class TestDnsProxy:
    @pytest.fixture
    def dns_net(self, tri_net):
        sim, router, hosts, daemons, addrs = tri_net
        # c runs the DNS server.
        udp_c = UdpStack(hosts["c"])
        zone = Zone()
        server = DnsServer(hosts["c"], udp_c, zone=zone)
        udp_a = UdpStack(hosts["a"])
        resolver = DnsResolver(hosts["a"], udp_a, server_addr=ipv4(addrs["c"]))
        proxy = HipDnsProxy(daemons["a"], resolver)
        return sim, daemons, addrs, zone, proxy

    def test_hip_name_resolves_to_lsi_and_primes_daemon(self, dns_net, drive):
        sim, daemons, addrs, zone, proxy = dns_net
        publish_hip_host(zone, "b.cloud", daemons["b"], [ipv4(addrs["b"])])
        lsi = drive(sim, proxy.resolve("b.cloud", family=4))
        assert is_lsi(lsi)
        assert daemons["a"].hosts[daemons["b"].hit] == [ipv4(addrs["b"])]
        assert proxy.hip_answers == 1

    def test_hip_name_resolves_to_hit_for_v6(self, dns_net, drive):
        sim, daemons, addrs, zone, proxy = dns_net
        publish_hip_host(zone, "b.cloud", daemons["b"], [ipv4(addrs["b"])])
        hit = drive(sim, proxy.resolve("b.cloud", family=6))
        assert hit == daemons["b"].hit

    def test_plain_name_resolves_to_address(self, dns_net, drive):
        sim, daemons, addrs, zone, proxy = dns_net
        from repro.net.dns import DnsRecord

        zone.add(DnsRecord(name="plain.example", rtype="A",
                           address=ipv4("203.0.113.99")))
        addr = drive(sim, proxy.resolve("plain.example", family=4))
        assert addr == ipv4("203.0.113.99")
        assert proxy.plain_answers == 1

    def test_unknown_name_raises(self, dns_net):
        sim, daemons, addrs, zone, proxy = dns_net

        def flow():
            with pytest.raises(KeyError):
                yield from proxy.resolve("ghost.example", family=4)
            return True

        proc = sim.process(flow())
        assert sim.run(until=proc) is True

    def test_end_to_end_resolve_then_connect(self, dns_net, drive):
        """The full HIPL flow: resolve name -> LSI -> TCP through ESP."""
        sim, daemons, addrs, zone, proxy = dns_net
        publish_hip_host(zone, "b.cloud", daemons["b"], [ipv4(addrs["b"])])
        node_a = daemons["a"].node
        node_b = daemons["b"].node
        ta, tb = TcpStack(node_a), TcpStack(node_b)
        got = {}

        def server():
            listener = tb.listen(80)
            conn = yield listener.accept()
            got["data"] = yield from conn.recv_bytes(5)

        def client():
            lsi = yield from proxy.resolve("b.cloud", family=4)
            conn = yield sim.process(ta.open_connection(lsi, 80))
            conn.write(b"named")

        sim.process(server())
        sim.process(client())
        sim.run(until=60)
        assert got.get("data") == b"named"
