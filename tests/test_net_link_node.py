"""Link, node, routing and forwarding tests."""

import pytest

from repro.net.addresses import ipv4, ipv6, prefix
from repro.net.link import Link
from repro.net.node import Node
from repro.net.packet import IPHeader, Packet, UDPHeader, VirtualPayload
from repro.net.routing import RouteTable
from repro.net.topology import lan_pair, wire
from repro.sim import RngStreams, Simulator


def make_sink(node):
    """Register a capturing protocol handler for 'udp'."""
    seen = []
    node.register_protocol("udp", lambda n, p, i: seen.append(p))
    return seen


class TestRouteTable:
    def test_longest_prefix_match(self, sim):
        node = Node(sim, "n")
        wide = node.add_interface("wide")
        narrow = node.add_interface("narrow")
        table = RouteTable()
        table.add(prefix("10.0.0.0/8"), wide)
        table.add(prefix("10.1.0.0/16"), narrow)
        assert table.lookup(ipv4("10.1.2.3")) is narrow
        assert table.lookup(ipv4("10.2.0.1")) is wide
        assert table.lookup(ipv4("11.0.0.1")) is None

    def test_families_independent(self, sim):
        node = Node(sim, "n")
        iface = node.add_interface("i")
        table = RouteTable()
        table.add(prefix("::/0"), iface)
        assert table.lookup(ipv6("2001::1")) is iface
        assert table.lookup(ipv4("10.0.0.1")) is None

    def test_remove(self, sim):
        node = Node(sim, "n")
        iface = node.add_interface("i")
        table = RouteTable()
        table.add(prefix("10.0.0.0/8"), iface)
        assert table.remove(prefix("10.0.0.0/8")) == 1
        assert table.lookup(ipv4("10.0.0.1")) is None
        assert table.remove(prefix("10.0.0.0/8")) == 0


class TestLink:
    def test_serialization_plus_propagation_delay(self, sim):
        a, b = lan_pair(sim, "a", "b", bandwidth_bps=8e6, delay_s=1e-3)
        seen = make_sink(b)
        pkt = Packet(
            headers=(UDPHeader(src_port=1, dst_port=2),),
            payload=VirtualPayload(1000 - 28),
        )
        a.send_ip(ipv4("10.0.0.2"), "udp", pkt)
        sim.run()
        # 1000 bytes at 8 Mbit/s = 1 ms serialize + 1 ms propagate.
        assert sim.now == pytest.approx(2e-3)
        assert len(seen) == 1

    def test_queue_drop_tail(self, sim):
        a, b = lan_pair(sim, "a", "b", bandwidth_bps=1e3)  # very slow
        make_sink(b)
        egress = a.interface("eth0")
        sent = sum(
            a.send_ip(
                ipv4("10.0.0.2"), "udp",
                Packet(headers=(UDPHeader(src_port=1, dst_port=2),),
                       payload=VirtualPayload(100)),
            )
            for _ in range(400)
        )
        assert sent < 400  # some were dropped at the bounded egress queue
        assert egress._endpoint.queue.dropped > 0

    def test_loss_rate_validation(self, sim):
        with pytest.raises(ValueError):
            Link(sim, loss_rate=0.5)  # missing rng
        with pytest.raises(ValueError):
            Link(sim, loss_rate=1.5, loss_rng=object())

    def test_lossy_link_drops_packets(self, sim):
        rng = RngStreams(3).stream("loss")
        link = Link(sim, loss_rate=0.5, loss_rng=rng)
        a = Node(sim, "a")
        b = Node(sim, "b")
        ia = a.add_interface("eth0", ipv4("10.0.0.1"))
        ib = b.add_interface("eth0", ipv4("10.0.0.2"))
        link.connect(ia, ib)
        a.routes.add(prefix("10.0.0.0/24"), ia)
        seen = make_sink(b)
        for _ in range(100):
            a.send_ip(
                ipv4("10.0.0.2"), "udp",
                Packet(headers=(UDPHeader(src_port=1, dst_port=2),)),
            )
        sim.run()
        assert 20 < len(seen) < 80
        assert link.a_to_b.lost_packets == 100 - len(seen)

    def test_burst_loss_same_average_rate_in_runs(self, sim):
        # ``loss_rate`` is the *average*: burst mode scales the trigger down
        # by the run length, so the drop count stays in the same band but
        # the drops arrive as consecutive runs.
        rng = RngStreams(3).stream("loss")
        link = Link(sim, loss_rate=0.3, loss_rng=rng, loss_burst=3)
        a = Node(sim, "a")
        b = Node(sim, "b")
        ia = a.add_interface("eth0", ipv4("10.0.0.1"))
        ib = b.add_interface("eth0", ipv4("10.0.0.2"))
        link.connect(ia, ib)
        a.routes.add(prefix("10.0.0.0/24"), ia)
        seen = make_sink(b)
        # 250 packets fit the 256-deep egress queue: no drop-tail losses
        # pollute the count, every missing packet is a burst-model loss.
        for i in range(250):
            a.send_ip(
                ipv4("10.0.0.2"), "udp",
                Packet(headers=(UDPHeader(src_port=1, dst_port=i),)),
            )
        sim.run()
        lost = link.a_to_b.lost_packets
        assert lost == 250 - len(seen)
        assert 250 * 0.3 * 0.5 < lost < 250 * 0.3 * 1.5  # ~the average rate
        # Reconstruct the loss positions from the surviving dst ports: every
        # loss run (except a possible truncated tail) is exactly 3 long.
        delivered = {p.find(UDPHeader).dst_port for p in seen}
        runs, run = [], 0
        for i in range(250):
            if i in delivered:
                if run:
                    runs.append(run)
                run = 0
            else:
                run += 1
        if run:
            runs.append(run)
        assert runs, "burst link lost nothing"
        # Adjacent bursts can merge into multiples of 3.
        assert all(r % 3 == 0 for r in runs[:-1])
        assert runs[-1] % 3 == 0 or runs[-1] < 3  # tail may truncate

    def test_loss_burst_validation(self, sim):
        with pytest.raises(ValueError):
            Link(sim, loss_rate=0.1, loss_rng=object(), loss_burst=0)

    def test_double_attach_rejected(self, sim):
        a, b = lan_pair(sim, "a", "b")
        with pytest.raises(RuntimeError):
            a.interface("eth0").attach(Link(sim).a_to_b)

    def test_byte_counters(self, sim):
        a, b = lan_pair(sim, "a", "b")
        make_sink(b)
        pkt = Packet(headers=(UDPHeader(src_port=1, dst_port=2),), payload=b"x" * 72)
        a.send_ip(ipv4("10.0.0.2"), "udp", pkt)
        sim.run()
        link_ep = a.interface("eth0")._endpoint
        assert link_ep.tx_packets == 1
        assert link_ep.tx_bytes == 20 + 8 + 72


class TestNode:
    def test_local_loopback_delivery(self, sim):
        node = Node(sim, "solo")
        node.add_interface("eth0", ipv4("10.0.0.1"))
        seen = make_sink(node)
        node.send_ip(
            ipv4("10.0.0.1"), "udp",
            Packet(headers=(UDPHeader(src_port=1, dst_port=2),)),
        )
        sim.run()
        assert len(seen) == 1

    def test_no_route_counts_drop(self, sim):
        node = Node(sim, "n")
        node.add_interface("eth0", ipv4("10.0.0.1"))
        ok = node.send_ip(
            ipv4("192.168.9.9"), "udp",
            Packet(headers=(UDPHeader(src_port=1, dst_port=2),)),
        )
        assert not ok
        assert node.dropped_no_route == 1

    def test_unknown_protocol_counts_drop(self, sim):
        a, b = lan_pair(sim, "a", "b")
        a.send_ip(
            ipv4("10.0.0.2"), "nonexistent",
            Packet(headers=(UDPHeader(src_port=1, dst_port=2),)),
        )
        sim.run()
        assert b.dropped_no_handler == 1

    def test_duplicate_protocol_registration_rejected(self, sim):
        node = Node(sim, "n")
        node.register_protocol("udp", lambda n, p, i: None)
        with pytest.raises(ValueError):
            node.register_protocol("udp", lambda n, p, i: None)

    def test_forwarding_decrements_ttl(self, sim):
        # a -- router -- b
        a = Node(sim, "a")
        router = Node(sim, "router", forwarding=True)
        b = Node(sim, "b")
        ia, ra, _ = wire(sim, a, router, addr_a=ipv4("10.0.1.1"))
        rb, ib, _ = wire(sim, router, b, addr_b=ipv4("10.0.2.1"))
        a.routes.add(prefix("0.0.0.0/0"), ia)
        router.routes.add(prefix("10.0.2.0/24"), rb)
        router.routes.add(prefix("10.0.1.0/24"), ra)
        b.routes.add(prefix("0.0.0.0/0"), ib)
        seen = make_sink(b)
        a.send_ip(
            ipv4("10.0.2.1"), "udp",
            Packet(headers=(UDPHeader(src_port=5, dst_port=6),)),
            ttl=9,
        )
        sim.run()
        assert len(seen) == 1
        assert seen[0].outer.ttl == 8

    def test_ttl_exhaustion_drops(self, sim):
        a = Node(sim, "a")
        router = Node(sim, "router", forwarding=True)
        b = Node(sim, "b")
        ia, ra, _ = wire(sim, a, router, addr_a=ipv4("10.0.1.1"))
        rb, ib, _ = wire(sim, router, b, addr_b=ipv4("10.0.2.1"))
        a.routes.add(prefix("0.0.0.0/0"), ia)
        router.routes.add(prefix("10.0.2.0/24"), rb)
        b.routes.add(prefix("0.0.0.0/0"), ib)
        seen = make_sink(b)
        a.send_ip(
            ipv4("10.0.2.1"), "udp",
            Packet(headers=(UDPHeader(src_port=5, dst_port=6),)),
            ttl=1,
        )
        sim.run()
        assert not seen
        assert router.dropped_ttl == 1

    def test_non_forwarding_node_drops_transit(self, sim):
        a, b = lan_pair(sim, "a", "b")
        b.add_interface("lo", ipv4("10.9.9.9"))
        # Address not on b and b is not a router.
        a.routes.add(prefix("0.0.0.0/0"), a.interface("eth0"))
        a.send_ip(
            ipv4("172.16.0.1"), "udp",
            Packet(headers=(UDPHeader(src_port=1, dst_port=2),)),
        )
        sim.run()
        assert b.dropped_no_route == 1

    def test_cpu_work_serializes(self, sim):
        node = Node(sim, "n", cpu_cores=1, cpu_scale=2.0)
        done = []

        def job(name):
            yield from node.cpu_work(1.0)
            done.append((name, sim.now))

        sim.process(job("first"))
        sim.process(job("second"))
        sim.run()
        # Each job takes 2 s (scale 2), serialized on 1 core.
        assert done == [("first", 2.0), ("second", 4.0)]
        assert node.cpu_busy_seconds == pytest.approx(4.0)

    def test_cpu_work_zero_is_free(self, sim, drive):
        node = Node(sim, "n")

        def job():
            yield from node.cpu_work(0.0)
            return sim.now

        assert drive(sim, job()) == 0.0

    def test_cpu_work_negative_rejected(self, sim):
        node = Node(sim, "n")
        with pytest.raises(ValueError):
            list(node.cpu_work(-1))

    def test_pick_source_prefers_routed_interface(self, sim):
        node = Node(sim, "n")
        eth = node.add_interface("eth0", ipv4("10.0.0.1"))
        node.add_interface("other", ipv4("172.16.0.1"))
        node.routes.add(prefix("10.0.0.0/24"), eth)
        assert node._pick_source(ipv4("10.0.0.9")) == ipv4("10.0.0.1")

    def test_pick_source_falls_back_to_any_family_address(self, sim):
        node = Node(sim, "n")
        node.add_interface("eth0", ipv4("10.0.0.1"))
        assert node._pick_source(ipv4("99.9.9.9")) == ipv4("10.0.0.1")
        assert node._pick_source(ipv6("2001::1")) is None
