"""Analyzer tests: per-rule positive/negative fixtures, suppression
handling, reporter schema, CLI exit codes, and a self-check that the repo's
own tree is clean under ``--strict``.

The fixture table is keyed by rule id and cross-checked against the
registry, so deleting (or unregistering) any rule implementation fails the
corresponding positive case here.
"""

from __future__ import annotations

import json
import pathlib
import textwrap

import pytest

import repro
from repro.analysis import ANALYSIS_SCHEMA, analysis_json, analyze_paths, analyze_source
from repro.analysis.base import registered_rules
from repro.analysis.runner import load_baseline, main as analysis_main

PRODUCT = "src/repro/fake/module.py"  # scoped like simulator code
TESTCODE = "tests/test_fake.py"  # scoped like test code

REPO_ROOT = pathlib.Path(repro.__file__).resolve().parents[2]


def active(source: str, path: str = PRODUCT) -> list:
    return [f for f in analyze_source(textwrap.dedent(source), path) if not f.suppressed]


def rule_ids(source: str, path: str = PRODUCT) -> set[str]:
    return {f.rule for f in active(source, path)}


# Per-rule fixtures: each entry is (snippets that must fire, snippets that
# must stay silent) under product scope.
FIXTURES: dict[str, tuple[list[str], list[str]]] = {
    "DET001": (
        [
            "import time\nx = time.time()\n",
            "import time\nx = time.monotonic()\n",
            "from time import perf_counter\nx = perf_counter()\n",
            "from datetime import datetime\nd = datetime.now()\n",
            "import datetime\nd = datetime.datetime.utcnow()\n",
            "import os\nb = os.urandom(16)\n",
            "import uuid\nu = uuid.uuid4()\n",
            "import secrets\nt = secrets.token_bytes(8)\n",
        ],
        [
            "x = sim.now\n",
            "import time\ntime.sleep(1)\n",  # blocking, but not a clock read
            "t = obj.time()\n",  # method on an object, not the module
        ],
    ),
    "DET002": (
        [
            "import random\nx = random.random()\n",
            "import random as _r\nrng = _r.Random(3)\n",
            "from random import randint\nx = randint(1, 6)\n",
            "import random\nrandom.shuffle(items)\n",
        ],
        [
            # Injected-RNG idiom: annotation plus draws on the parameter.
            "import random\ndef f(rng: random.Random) -> float:\n    return rng.random()\n",
            "x = self.rng.randint(0, 9)\n",
        ],
    ),
    "DET003": (
        [
            "for x in {1, 2, 3}:\n    pass\n",
            "for x in set(xs):\n    pass\n",
            "ys = [y for y in set(xs)]\n",
            "order = sorted(xs, key=id)\n",
            "xs.sort(key=lambda o: id(o))\n",
        ],
        [
            "for x in sorted(set(xs)):\n    pass\n",
            "for k in mapping:\n    pass\n",
            "best = min(xs, key=len)\n",
            "present = x in {1, 2, 3}\n",  # membership, not iteration
        ],
    ),
    "MET001": (
        [
            "RECORDER.record(1.0, 'tcp', 'tx')\n",
            "def f():\n    RECORDER.record(0.0, 'link', 'rx', n=1)\n",
            # An enabled-check somewhere else does not guard the else arm.
            "if RECORDER.enabled:\n    pass\nelse:\n    RECORDER.record(0.0, 'a', 'b')\n",
        ],
        [
            "if RECORDER.enabled:\n    RECORDER.record(1.0, 'tcp', 'tx')\n",
            "if RECORDER.enabled and verbose:\n    RECORDER.record(1.0, 'a', 'b')\n",
            "rec.record(1.0, 'a', 'b')\n",  # not the global singleton
        ],
    ),
    "EXC001": (
        [
            "try:\n    f()\nexcept:\n    handle()\n",
            "try:\n    f()\nexcept Exception:\n    pass\n",
            "try:\n    f()\nexcept (ValueError, Exception):\n    ...\n",
        ],
        [
            "try:\n    f()\nexcept ValueError:\n    pass\n",
            "try:\n    f()\nexcept Exception:\n    raise\n",
            "try:\n    f()\nexcept Exception as exc:\n    log(exc)\n",
        ],
    ),
    "ARG001": (
        [
            "def f(a=[]):\n    pass\n",
            "def f(*, b={}):\n    pass\n",
            "def f(c=set()):\n    pass\n",
            "def f(d=dict()):\n    pass\n",
            "from collections import deque\ndef f(q=deque()):\n    pass\n",
            "g = lambda acc=[]: acc\n",
        ],
        [
            "def f(a=None):\n    pass\n",
            "def f(a=frozenset()):\n    pass\n",
            "def f(a=()):\n    pass\n",
            "def f(a=0, b='x'):\n    pass\n",
        ],
    ),
}


# Rules with richer fixture suites in their own test modules.
_COVERED_ELSEWHERE = {
    "CONF001": "tests/test_analysis_conformance.py",
    "CONF002": "tests/test_analysis_conformance.py",
    "CONF003": "tests/test_analysis_conformance.py",
    "SEC001": "tests/test_analysis_taint.py",
    "SEC002": "tests/test_analysis_taint.py",
    "SEC003": "tests/test_analysis_dataflow.py",
    "SEC004": "tests/test_analysis_dataflow.py",
    "VAL001": "tests/test_analysis_validation.py",
    "VAL002": "tests/test_analysis_validation.py",
    "VAL003": "tests/test_analysis_validation.py",
    "PERF001": "tests/test_analysis_perf.py",
    "PERF002": "tests/test_analysis_perf.py",
    "ISO001": "tests/test_analysis_isolation.py",
    "ISO002": "tests/test_analysis_isolation.py",
    "ISO003": "tests/test_analysis_isolation.py",
    "ISO004": "tests/test_analysis_isolation.py",
    "LIF001": "tests/test_analysis_lifecycle.py",
    "LIF002": "tests/test_analysis_lifecycle.py",
    "LIF003": "tests/test_analysis_lifecycle.py",
}


def test_fixture_table_covers_every_registered_rule():
    assert set(FIXTURES) | set(_COVERED_ELSEWHERE) == set(registered_rules())
    for module in set(_COVERED_ELSEWHERE.values()):
        assert (REPO_ROOT / module).is_file(), f"missing fixture module {module}"


@pytest.mark.parametrize("rule", sorted(FIXTURES))
def test_rule_fires_on_positive_fixtures(rule):
    for snippet in FIXTURES[rule][0]:
        assert rule in rule_ids(snippet), f"{rule} silent on: {snippet!r}"


@pytest.mark.parametrize("rule", sorted(FIXTURES))
def test_rule_silent_on_negative_fixtures(rule):
    for snippet in FIXTURES[rule][1]:
        assert rule not in rule_ids(snippet), f"{rule} fired on: {snippet!r}"


# ---------------------------------------------------------------- scoping --


def test_determinism_rules_do_not_bind_in_test_code():
    clocky = "import time\nx = time.time()\nimport random\ny = random.random()\n"
    assert rule_ids(clocky, path=TESTCODE) == set()


def test_arg001_binds_in_test_code_too():
    assert "ARG001" in rule_ids("def f(a=[]):\n    pass\n", path=TESTCODE)


def test_rng_module_is_exempt_from_det002():
    src = "import random\nrng = random.Random(7)\n"
    assert "DET002" not in rule_ids(src, path="src/repro/sim/rng.py")
    assert "DET002" in rule_ids(src, path="src/repro/sim/engine.py")


# ------------------------------------------------------------ suppression --


def test_same_line_suppression_with_justification():
    src = "import time\nx = time.time()  # repro: ignore[DET001] -- calibration only\n"
    findings = analyze_source(src, PRODUCT)
    det = [f for f in findings if f.rule == "DET001"]
    assert len(det) == 1 and det[0].suppressed
    assert det[0].justification == "calibration only"
    assert not [f for f in findings if f.rule.startswith("ANA")]


def test_standalone_suppression_covers_next_line():
    src = (
        "import time\n"
        "# repro: ignore[DET001] -- measuring the host on purpose\n"
        "x = time.time()\n"
    )
    findings = analyze_source(src, PRODUCT)
    assert [f.rule for f in findings if not f.suppressed] == []


def test_wildcard_suppression():
    src = "import time, random\nx = time.time() + random.random()  # repro: ignore[*] -- fixture\n"
    findings = analyze_source(src, PRODUCT)
    assert all(f.suppressed for f in findings if f.rule.startswith("DET"))


def test_suppression_without_justification_is_ana001():
    src = "import time\nx = time.time()  # repro: ignore[DET001]\n"
    assert "ANA001" in {f.rule for f in analyze_source(src, PRODUCT)}


def test_unused_suppression_is_ana002():
    src = "x = 1  # repro: ignore[DET001] -- nothing here\n"
    assert "ANA002" in {f.rule for f in analyze_source(src, PRODUCT)}


def test_rule_subset_skips_foreign_unused_suppressions():
    # A justified DET001 suppression must not read as "unused" (ANA002)
    # when a --rules subset excludes DET001 from the run entirely.
    src = "import time\nx = time.time()  # repro: ignore[DET001] -- fixture\n"
    rules = {f.rule for f in analyze_source(src, PRODUCT, rules={"ARG001"})}
    assert "ANA002" not in rules
    # A wildcard suppression is in scope for whatever ran, so if nothing
    # matched it, it is genuinely unused.
    src = "x = 1  # repro: ignore[*] -- nothing here\n"
    rules = {f.rule for f in analyze_source(src, PRODUCT, rules={"ARG001"})}
    assert "ANA002" in rules


def test_suppression_for_other_rule_does_not_apply():
    src = "import time\nx = time.time()  # repro: ignore[DET002] -- wrong rule\n"
    rules = {f.rule for f in analyze_source(src, PRODUCT) if not f.suppressed}
    assert "DET001" in rules and "ANA002" in rules


def test_directive_inside_string_is_not_a_suppression():
    src = 'import time\nmsg = "# repro: ignore[DET001] -- not a comment"\nx = time.time()\n'
    assert "DET001" in rule_ids(src)


def test_syntax_error_reports_ana000():
    assert {f.rule for f in analyze_source("def f(:\n", PRODUCT)} == {"ANA000"}


# -------------------------------------------------------------- reporters --


def _write_tree(root: pathlib.Path) -> None:
    product = root / "src" / "repro" / "mod.py"
    product.parent.mkdir(parents=True)
    product.write_text(
        "import time\n"
        "x = time.time()\n"
        "y = time.monotonic()  # repro: ignore[DET001] -- fixture exercises suppression\n"
    )
    testfile = root / "tests" / "test_mod.py"
    testfile.parent.mkdir(parents=True)
    testfile.write_text("def f(a=[]):\n    pass\n")


def test_json_report_schema_round_trip(tmp_path):
    _write_tree(tmp_path)
    result = analyze_paths([str(tmp_path / "src"), str(tmp_path / "tests")])
    payload = analysis_json(result)
    # Strict JSON: no NaN, round-trips losslessly.
    parsed = json.loads(json.dumps(payload, allow_nan=False, sort_keys=True))
    assert parsed == payload
    assert parsed["schema"] == ANALYSIS_SCHEMA
    assert parsed["files"] == 2
    assert parsed["clean"] is False
    assert parsed["counts"] == {"ARG001": 1, "DET001": 1}
    assert {f["rule"] for f in parsed["findings"]} == {"ARG001", "DET001"}
    [suppressed] = parsed["suppressed"]
    assert suppressed["rule"] == "DET001" and suppressed["suppressed"] is True
    assert suppressed["justification"] == "fixture exercises suppression"
    assert set(parsed["rules"]) >= set(registered_rules())


def test_findings_sorted_deterministically(tmp_path):
    _write_tree(tmp_path)
    result = analyze_paths([str(tmp_path)])
    locs = [(f["path"], f["line"], f["col"]) for f in analysis_json(result)["findings"]]
    assert locs == sorted(locs)


# -------------------------------------------------------------------- CLI --


def test_cli_clean_file_exits_zero(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert analysis_main([str(clean)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_findings_exit_one_and_render_locations(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\nx = time.time()\n")
    assert analysis_main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "bad.py:2:4: DET001" in out


def test_cli_strict_gates_on_suppression_hygiene(tmp_path, capsys):
    src = tmp_path / "src" / "repro" / "mod.py"
    src.parent.mkdir(parents=True)
    src.write_text("import time\nx = time.time()  # repro: ignore[DET001]\n")
    # Non-strict: the DET001 is suppressed; the missing justification is
    # reported but does not gate.
    assert analysis_main([str(src)]) == 0
    assert analysis_main([str(src), "--strict"]) == 1
    capsys.readouterr()


def test_cli_json_format(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def f(a={}):\n    pass\n")
    assert analysis_main([str(bad), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == ANALYSIS_SCHEMA and payload["counts"] == {"ARG001": 1}


def test_cli_rule_selection(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\nx = time.time()\ndef f(a=[]):\n    pass\n")
    assert analysis_main([str(bad), "--rules", "ARG001", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"] == {"ARG001": 1}
    assert analysis_main([str(bad), "--rules", "NOPE01"]) == 2
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert analysis_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in registered_rules():
        assert rule in out


# ---------------------------------------------------------------- baseline --


def _baselineable_tree(tmp_path):
    """One accepted legacy finding (ISO001) plus room to add a fresh one."""
    bad = tmp_path / "src" / "repro" / "legacy.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("_POOL = []\n\ndef release(x):\n    _POOL.append(x)\n")
    return bad


def test_baseline_accepted_finding_does_not_gate(tmp_path, capsys):
    bad = _baselineable_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert analysis_main([str(bad), "--write-baseline", str(baseline)]) == 0
    assert "wrote 1 baseline" in capsys.readouterr().out
    # Round trip: the same tree gates without the baseline, passes with it.
    assert analysis_main([str(bad), "--strict"]) == 1
    capsys.readouterr()
    assert analysis_main([str(bad), "--strict", "--baseline", str(baseline)]) == 0
    assert "baselined" in capsys.readouterr().out


def test_baseline_matches_by_path_suffix():
    # An entry recorded repo-relative must match the same file analyzed via
    # an absolute path — lines are ignored so edits above don't invalidate it.
    source = "_POOL = []\n\ndef release(x):\n    _POOL.append(x)\n"
    findings = analyze_source(source, "/abs/prefix/src/repro/legacy.py")
    from repro.analysis.runner import AnalysisResult

    result = AnalysisResult(files_checked=1, findings=findings)
    [finding] = result.active
    result.apply_baseline(
        [{"path": "src/repro/legacy.py", "rule": finding.rule,
          "message": finding.message}]
    )
    assert not result.active and len(result.baselined) == 1
    assert result.baselined[0].baselined


def test_baseline_new_finding_still_gates(tmp_path, capsys):
    bad = _baselineable_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert analysis_main([str(bad), "--write-baseline", str(baseline)]) == 0
    # A fresh regression in the same file is NOT covered by the baseline.
    bad.write_text(
        bad.read_text() + "\n_CACHE = {}\n\ndef remember(k, v):\n"
        "    _CACHE[k] = v\n"
    )
    capsys.readouterr()
    assert analysis_main([str(bad), "--strict", "--baseline", str(baseline)]) == 1
    assert "_CACHE" in capsys.readouterr().out


def test_baseline_stale_entry_reports_ana003(tmp_path, capsys):
    bad = _baselineable_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert analysis_main([str(bad), "--write-baseline", str(baseline)]) == 0
    # Fix the legacy finding; the baseline entry is now stale and must gate
    # under --strict (a stale baseline hides regressions).
    bad.write_text("def release(pool, x):\n    pool.append(x)\n")
    capsys.readouterr()
    assert analysis_main([str(bad), "--baseline", str(baseline)]) == 0
    assert analysis_main([str(bad), "--strict", "--baseline", str(baseline)]) == 1
    assert "ANA003" in capsys.readouterr().out


def test_baseline_stale_entry_ignored_under_rules_subset(tmp_path, capsys):
    # Under --rules the baselined rule may simply not have run; its unused
    # entry must not count as stale then.
    bad = _baselineable_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert analysis_main([str(bad), "--write-baseline", str(baseline)]) == 0
    capsys.readouterr()
    assert analysis_main(
        [str(bad), "--strict", "--rules", "lif", "--baseline", str(baseline)]
    ) == 0
    capsys.readouterr()


def test_baseline_suffix_requires_component_boundary():
    # "pro/legacy.py" must not match "src/repro/legacy.py" — suffixes only
    # bind at path-component boundaries.
    source = "_POOL = []\n\ndef release(x):\n    _POOL.append(x)\n"
    findings = analyze_source(source, "src/repro/legacy.py")
    from repro.analysis.runner import AnalysisResult

    result = AnalysisResult(files_checked=1, findings=findings)
    [finding] = result.active
    result.apply_baseline(
        [{"path": "pro/legacy.py", "rule": finding.rule,
          "message": finding.message}]
    )
    assert result.active  # no match; the finding still gates
    assert any(f.rule == "ANA003" for f in result.findings)  # entry is stale


def test_baseline_entry_matches_only_one_of_two_suffix_sharing_files():
    # Two files share the suffix the entry names; one entry accepts exactly
    # one finding, the twin still gates.
    source = "_POOL = []\n\ndef release(x):\n    _POOL.append(x)\n"
    findings = analyze_source(source, "a/vendored/repro/legacy.py")
    findings += analyze_source(source, "b/vendored/repro/legacy.py")
    from repro.analysis.runner import AnalysisResult

    result = AnalysisResult(files_checked=2, findings=findings)
    rule, message = result.active[0].rule, result.active[0].message
    result.apply_baseline(
        [{"path": "vendored/repro/legacy.py", "rule": rule, "message": message}]
    )
    assert len(result.baselined) == 1
    assert len([f for f in result.active if f.rule == rule]) == 1


def test_baseline_renamed_file_goes_stale(tmp_path, capsys):
    bad = _baselineable_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert analysis_main([str(bad), "--write-baseline", str(baseline)]) == 0
    renamed = bad.with_name("renamed.py")
    bad.rename(renamed)
    capsys.readouterr()
    # The finding moved to a path the entry no longer matches: the new
    # finding gates AND the entry reports stale.
    assert analysis_main(
        [str(renamed), "--strict", "--baseline", str(baseline)]
    ) == 1
    out = capsys.readouterr().out
    assert "ANA003" in out and "renamed.py" in out


def test_write_baseline_is_idempotent(tmp_path, capsys):
    bad = _baselineable_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert analysis_main([str(bad), "--write-baseline", str(baseline)]) == 0
    first = baseline.read_text()
    assert analysis_main([str(bad), "--write-baseline", str(baseline)]) == 0
    assert baseline.read_text() == first
    capsys.readouterr()


def test_baseline_bad_file_is_usage_error(tmp_path, capsys):
    bad = _baselineable_tree(tmp_path)
    missing = tmp_path / "nope.json"
    assert analysis_main([str(bad), "--baseline", str(missing)]) == 2
    wrong = tmp_path / "wrong.json"
    wrong.write_text(json.dumps({"schema": "something-else/9", "findings": []}))
    assert analysis_main([str(bad), "--baseline", str(wrong)]) == 2
    capsys.readouterr()


def test_baseline_findings_reported_in_json(tmp_path, capsys):
    bad = _baselineable_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert analysis_main([str(bad), "--write-baseline", str(baseline)]) == 0
    capsys.readouterr()
    assert analysis_main(
        [str(bad), "--json", "--strict", "--baseline", str(baseline)]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] and payload["findings"] == []
    [entry] = payload["baselined"]
    assert entry["rule"] == "ISO001" and entry["baselined"] is True


# -------------------------------------------------------------- self-check --


def test_repo_tree_is_clean_under_strict():
    """The shipped tree must pass its own linter (modulo the shipped
    baseline, which must itself be exactly current — stale entries gate as
    ANA003), and every suppression in it must carry a justification."""
    result = analyze_paths([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")])
    baseline_file = REPO_ROOT / "analysis_baseline.json"
    if baseline_file.is_file():
        result.apply_baseline(load_baseline(str(baseline_file)))
    gating = result.gating(strict=True)
    assert not gating, "\n".join(f"{f.location()}: {f.rule} {f.message}" for f in gating)
    for finding in result.suppressed:
        assert finding.justification, f"unjustified suppression at {finding.location()}"


def test_interprocedural_suppression_budget():
    """The SEC/VAL/PERF families are allowed at most 10 justified
    suppressions across the product tree — past that, fix the code or
    narrow the rule, don't paper over it."""
    families = {r for r in registered_rules() if r.startswith(("SEC", "VAL", "PERF"))}
    result = analyze_paths([str(REPO_ROOT / "src")], rules=families)
    suppressed = [
        f for f in result.suppressed
        if f.rule.startswith(("SEC", "VAL", "PERF"))
    ]
    assert len(suppressed) <= 10, "\n".join(
        f"{f.location()}: {f.rule}" for f in suppressed
    )
    for finding in suppressed:
        assert finding.justification, f"unjustified suppression at {finding.location()}"
