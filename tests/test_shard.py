"""Sharded simulation: lookahead validation, envelope routing, determinism.

The conservative-lookahead contract: inline workers, process workers and the
reference engine must all route the identical envelope stream (refereed by
``ShardedSimulation.boundary_digest``) and produce identical per-shard
results — and those results must match the monolithic single-heap twin of
the same topology.
"""

import pytest

from repro.net.addresses import Prefix, ipv4
from repro.net.node import Node
from repro.net.topology import wire_cross_shard
from repro.net.udp import UdpStack
from repro.sim.shard import LookaheadError, ShardedSimulation, ShardError

LEFT_ADDR = ipv4("10.7.0.1")
RIGHT_ADDR = ipv4("10.7.0.2")
CROSS_DELAY = 2e-3
ECHO_PORT = 7000


def build_left(shard, n_packets=20, delay_s=CROSS_DELAY, dst_shard="right"):
    """Sender shard: jittered UDP pings across the portal, counts echoes."""
    sim = shard.sim
    node = Node(sim, "left")
    iface = wire_cross_shard(
        shard, node, LEFT_ADDR, out_port="l->r", in_port="r->l",
        dst_shard=dst_shard, delay_s=delay_s,
    )
    node.routes.add(Prefix(RIGHT_ADDR, 32), iface)
    sock = UdpStack(node).bind(ECHO_PORT)
    rng = shard.rngs.stream("tx")
    stats = {"sent": 0, "echoed": 0}

    def tx():
        for i in range(n_packets):
            yield sim.timeout(rng.random() * 0.01)
            sock.sendto(bytes([i % 251]) * 64, RIGHT_ADDR, ECHO_PORT)
            stats["sent"] += 1

    def rx():
        while True:
            yield sock.recvfrom()
            stats["echoed"] += 1

    sim.process(tx())
    sim.process(rx())
    shard.result_fn = lambda: dict(stats)


def build_right(shard, delay_s=CROSS_DELAY):
    """Echo shard: bounces every datagram back through the portal."""
    sim = shard.sim
    node = Node(sim, "right")
    iface = wire_cross_shard(
        shard, node, RIGHT_ADDR, out_port="r->l", in_port="l->r",
        dst_shard="left", delay_s=delay_s,
    )
    node.routes.add(Prefix(LEFT_ADDR, 32), iface)
    sock = UdpStack(node).bind(ECHO_PORT)
    stats = {"received": 0}

    def echo():
        while True:
            payload, (src, sport) = yield sock.recvfrom()
            stats["received"] += 1
            sock.sendto(payload, src, sport)

    sim.process(echo())
    shard.result_fn = lambda: dict(stats)


def echo_builders(**left_kw):
    return {
        "left": (build_left, left_kw),
        "right": (build_right, {}),
    }


def run_echo(seed=42, until=1.0, **kwargs):
    sharded = ShardedSimulation(echo_builders(), seed, **kwargs)
    results = sharded.run(until)
    return sharded, results


def test_echo_across_portal_completes():
    sharded, results = run_echo()
    assert results["left"]["sent"] == 20
    assert results["right"]["received"] == 20
    assert results["left"]["echoed"] == 20
    assert sharded.envelopes_routed == 40  # 20 pings + 20 echoes
    assert sharded.lookahead == CROSS_DELAY


def test_process_workers_match_inline():
    inline, inline_res = run_echo(parallel=False)
    procs, procs_res = run_echo(parallel=True)
    assert procs_res == inline_res
    assert procs.boundary_digest == inline.boundary_digest
    assert procs.windows == inline.windows


def test_reference_engine_matches_fast_path():
    fast, fast_res = run_echo(fast_path=True)
    ref, ref_res = run_echo(fast_path=False)
    assert ref_res == fast_res
    assert ref.boundary_digest == fast.boundary_digest


def test_seed_changes_boundary_digest():
    a, _ = run_echo(seed=1)
    b, _ = run_echo(seed=2)
    assert a.boundary_digest != b.boundary_digest  # jitter differs per seed


def test_lookahead_must_not_exceed_link_delay():
    with pytest.raises(LookaheadError):
        ShardedSimulation(echo_builders(), 42, lookahead=10 * CROSS_DELAY)


def test_lookahead_must_be_positive():
    with pytest.raises(LookaheadError):
        ShardedSimulation(echo_builders(), 42, lookahead=0.0)


def test_zero_delay_portal_rejected():
    # A zero-delay cross-shard link leaves no lookahead window at all.
    with pytest.raises(LookaheadError):
        ShardedSimulation(echo_builders(delay_s=0.0), 42)


def test_egress_to_unknown_shard_rejected():
    with pytest.raises(ShardError):
        ShardedSimulation(echo_builders(dst_shard="nowhere"), 42)


def test_egress_without_matching_ingress_rejected():
    builders = {"left": (build_left, {})}  # no "right" shard at all
    with pytest.raises(ShardError):
        ShardedSimulation(builders, 42)


def test_link_counters_aggregate_across_workers():
    """Regression: shard link accounting used to write the process-global
    METRICS counters directly — a forked worker's writes died with the
    child, so ``parallel=True`` silently under-counted.  The per-shard
    ledger deltas published at every sync window must make both modes
    book identical totals."""
    from repro.metrics import METRICS

    tx_packets = METRICS.counter("link.tx_packets")
    tx_bytes = METRICS.counter("link.tx_bytes")

    def booked(parallel):
        before = (tx_packets.value, tx_bytes.value)
        run_echo(parallel=parallel)
        return (tx_packets.value - before[0], tx_bytes.value - before[1])

    inline = booked(parallel=False)
    forked = booked(parallel=True)
    assert inline == forked
    assert inline[0] >= 40  # 20 pings + 20 echoes crossed the boundary
    assert inline[1] > 0


# --- scale-scenario equivalence ----------------------------------------------


def test_scale_scenario_sharded_matches_monolithic():
    """The RUBiS scale scenario: per-zone stats from the sharded build must
    equal the monolithic twin's bit-for-bit (same RNG namespaces, same
    zone-local event order)."""
    from repro.scenarios.rubis_scale import (
        ScaleParams,
        build_scale_monolithic,
        scale_builders,
    )

    p = ScaleParams(
        n_zones=2, n_clients=2, n_web=1, n_filler_vms=2,
        n_racks=1, hosts_per_rack=2, media_prob=0.25, media_window=65536,
    )
    until = 3.0
    sharded = ShardedSimulation(scale_builders(p), 7)
    shard_res = sharded.run(until)

    sim, zones = build_scale_monolithic(7, p)
    sim.run(until=until)
    mono_res = {z.name: z.stats.as_dict() for z in zones}
    sim.close()

    assert shard_res == mono_res
    assert sum(z["sessions"] for z in shard_res.values()) > 0
    assert sum(z["errors"] for z in shard_res.values()) == 0
    assert sum(z["heartbeats_recv"] for z in shard_res.values()) > 0
    assert sharded.envelopes_routed > 0  # heartbeats crossed the boundary
