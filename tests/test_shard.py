"""Sharded simulation: lookahead validation, envelope routing, determinism.

The conservative-lookahead contract: inline workers, process workers and the
reference engine must all route the identical envelope stream (refereed by
``ShardedSimulation.boundary_digest``) and produce identical per-shard
results — and those results must match the monolithic single-heap twin of
the same topology.
"""

import pytest

from repro.net.addresses import Prefix, ipv4
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.topology import wire_cross_shard
from repro.net.udp import UdpStack
from repro.sim.shard import (
    Envelope,
    LookaheadError,
    ShardedSimulation,
    ShardError,
    decode_envelopes,
    encode_envelopes,
)

LEFT_ADDR = ipv4("10.7.0.1")
RIGHT_ADDR = ipv4("10.7.0.2")
CROSS_DELAY = 2e-3
ECHO_PORT = 7000


def build_left(shard, n_packets=20, delay_s=CROSS_DELAY, dst_shard="right"):
    """Sender shard: jittered UDP pings across the portal, counts echoes."""
    sim = shard.sim
    node = Node(sim, "left")
    iface = wire_cross_shard(
        shard, node, LEFT_ADDR, out_port="l->r", in_port="r->l",
        dst_shard=dst_shard, delay_s=delay_s,
    )
    node.routes.add(Prefix(RIGHT_ADDR, 32), iface)
    sock = UdpStack(node).bind(ECHO_PORT)
    rng = shard.rngs.stream("tx")
    stats = {"sent": 0, "echoed": 0}

    def tx():
        for i in range(n_packets):
            yield sim.timeout(rng.random() * 0.01)
            sock.sendto(bytes([i % 251]) * 64, RIGHT_ADDR, ECHO_PORT)
            stats["sent"] += 1

    def rx():
        while True:
            yield sock.recvfrom()
            stats["echoed"] += 1

    sim.process(tx())
    sim.process(rx())
    shard.result_fn = lambda: dict(stats)


def build_right(shard, delay_s=CROSS_DELAY):
    """Echo shard: bounces every datagram back through the portal."""
    sim = shard.sim
    node = Node(sim, "right")
    iface = wire_cross_shard(
        shard, node, RIGHT_ADDR, out_port="r->l", in_port="l->r",
        dst_shard="left", delay_s=delay_s,
    )
    node.routes.add(Prefix(LEFT_ADDR, 32), iface)
    sock = UdpStack(node).bind(ECHO_PORT)
    stats = {"received": 0}

    def echo():
        while True:
            payload, (src, sport) = yield sock.recvfrom()
            stats["received"] += 1
            sock.sendto(payload, src, sport)

    sim.process(echo())
    shard.result_fn = lambda: dict(stats)


def echo_builders(**left_kw):
    return {
        "left": (build_left, left_kw),
        "right": (build_right, {}),
    }


def run_echo(seed=42, until=1.0, builders=None, **kwargs):
    if builders is None:
        builders = echo_builders()
    sharded = ShardedSimulation(builders, seed, **kwargs)
    results = sharded.run(until)
    return sharded, results


def test_echo_across_portal_completes():
    sharded, results = run_echo()
    assert results["left"]["sent"] == 20
    assert results["right"]["received"] == 20
    assert results["left"]["echoed"] == 20
    assert sharded.envelopes_routed == 40  # 20 pings + 20 echoes
    assert sharded.lookahead == CROSS_DELAY


def test_process_workers_match_inline():
    inline, inline_res = run_echo(parallel=False)
    procs, procs_res = run_echo(parallel=True)
    assert procs_res == inline_res
    assert procs.boundary_digest == inline.boundary_digest
    assert procs.windows == inline.windows


def test_reference_engine_matches_fast_path():
    fast, fast_res = run_echo(fast_path=True)
    ref, ref_res = run_echo(fast_path=False)
    assert ref_res == fast_res
    assert ref.boundary_digest == fast.boundary_digest


def test_seed_changes_boundary_digest():
    a, _ = run_echo(seed=1)
    b, _ = run_echo(seed=2)
    assert a.boundary_digest != b.boundary_digest  # jitter differs per seed


def test_lookahead_must_not_exceed_link_delay():
    with pytest.raises(LookaheadError):
        ShardedSimulation(echo_builders(), 42, lookahead=10 * CROSS_DELAY)


def test_lookahead_must_be_positive():
    with pytest.raises(LookaheadError):
        ShardedSimulation(echo_builders(), 42, lookahead=0.0)


def test_zero_delay_portal_rejected():
    # A zero-delay cross-shard link leaves no lookahead window at all.
    with pytest.raises(LookaheadError):
        ShardedSimulation(echo_builders(delay_s=0.0), 42)


def test_egress_to_unknown_shard_rejected():
    with pytest.raises(ShardError):
        ShardedSimulation(echo_builders(dst_shard="nowhere"), 42)


def test_egress_without_matching_ingress_rejected():
    builders = {"left": (build_left, {})}  # no "right" shard at all
    with pytest.raises(ShardError):
        ShardedSimulation(builders, 42)


def test_link_counters_aggregate_across_workers():
    """Regression: shard link accounting used to write the process-global
    METRICS counters directly — a forked worker's writes died with the
    child, so ``parallel=True`` silently under-counted.  The per-shard
    ledger deltas published at every sync window must make both modes
    book identical totals."""
    from repro.metrics import METRICS

    tx_packets = METRICS.counter("link.tx_packets")
    tx_bytes = METRICS.counter("link.tx_bytes")

    def booked(parallel):
        before = (tx_packets.value, tx_bytes.value)
        run_echo(parallel=parallel)
        return (tx_packets.value - before[0], tx_bytes.value - before[1])

    inline = booked(parallel=False)
    forked = booked(parallel=True)
    assert inline == forked
    assert inline[0] >= 40  # 20 pings + 20 echoes crossed the boundary
    assert inline[1] > 0


# --- adaptive lookahead -------------------------------------------------------


def test_adaptive_digest_matches_static():
    """The digest referee must be invariant under the window schedule: an
    adaptive run digests the identical canonical envelope stream as the
    static-lookahead run, with no more windows than the static schedule."""
    adaptive, adaptive_res = run_echo(adaptive=True)
    static, static_res = run_echo(adaptive=False)
    assert adaptive_res == static_res
    assert adaptive.boundary_digest == static.boundary_digest
    assert adaptive.windows <= static.windows
    assert adaptive.stretched_windows > 0  # jittered pings leave idle gaps


def test_adaptive_process_matches_adaptive_inline():
    inline, inline_res = run_echo(parallel=False, adaptive=True)
    procs, procs_res = run_echo(parallel=True, adaptive=True)
    assert procs_res == inline_res
    assert procs.boundary_digest == inline.boundary_digest
    assert procs.windows == inline.windows


def test_sync_stats_shape():
    sharded, _ = run_echo(parallel=False)
    stats = sharded.sync_stats()
    assert stats["windows"] == sharded.windows
    assert stats["envelopes_routed"] == 40
    assert stats["envelopes_per_window"] == pytest.approx(
        40 / sharded.windows
    )
    assert set(stats["per_shard"]) == {"left", "right"}
    assert stats["window_wall_s"] > 0.0


# --- early exit ---------------------------------------------------------------


@pytest.mark.parametrize("parallel", [False, True])
def test_early_exit_only_when_drained(parallel):
    """``run(until=...)`` with a huge horizon must stop as soon as every
    shard is idle AND nothing is in flight — but not a window earlier."""
    sharded, results = run_echo(
        until=1000.0, parallel=parallel, builders=echo_builders(n_packets=3)
    )
    # All traffic completed before exit: nothing was abandoned in flight.
    assert results["left"]["sent"] == 3
    assert results["right"]["received"] == 3
    assert results["left"]["echoed"] == 3
    assert sharded.envelopes_routed == 6
    # And the loop exited long before the nominal horizon's window count
    # (1000 s / 2 ms lookahead = 500k static windows).
    assert sharded.windows < 1000


@pytest.mark.parametrize("parallel", [False, True])
def test_early_exit_waits_for_later_window_envelope(parallel):
    """The trap: every peek is ``inf`` while an envelope is still in flight,
    arriving many windows later (50 ms link delay, 2 ms lookahead).  The
    coordinator must keep running until it lands, not exit at the first
    all-idle barrier."""
    builders = {
        "left": (build_left, {"n_packets": 1, "delay_s": 50e-3}),
        "right": (build_right, {"delay_s": 50e-3}),
    }
    sharded = ShardedSimulation(builders, 42, lookahead=2e-3, parallel=parallel)
    results = sharded.run(1000.0)
    assert results["right"]["received"] == 1
    assert results["left"]["echoed"] == 1
    assert sharded.envelopes_routed == 2


# --- worker failure containment ----------------------------------------------


def build_bomb(shard, fuse_s=0.05):
    """A shard whose simulation raises mid-run (inside ``advance``)."""
    build_right(shard)

    def boom():
        raise RuntimeError("bomb went off")

    shard.sim.call_later(fuse_s, boom)


def test_failing_worker_stops_siblings():
    """Regression: a worker failing mid-window used to leak its live forked
    siblings.  Every worker process must be gone after ``run()`` raises."""
    builders = {
        "left": (build_left, {}),
        "right": (build_bomb, {}),
    }
    sharded = ShardedSimulation(builders, 42, parallel=True)
    with pytest.raises(ShardError, match="bomb went off"):
        sharded.run(1.0)
    for worker in sharded.workers.values():
        assert not worker._proc.is_alive()


def test_failing_worker_inline_mode_raises():
    builders = {
        "left": (build_left, {}),
        "right": (build_bomb, {}),
    }
    sharded = ShardedSimulation(builders, 42, parallel=False)
    with pytest.raises(RuntimeError, match="bomb went off"):
        sharded.run(1.0)


def test_failing_builder_stops_siblings():
    """A builder crash during construction must not leak the already-forked
    sibling workers either."""

    def bad_builder(shard):
        raise ValueError("builder exploded")

    builders = {
        "left": (build_left, {}),
        "right": (bad_builder, {}),
    }
    with pytest.raises(ShardError, match="builder exploded"):
        ShardedSimulation(builders, 42, parallel=True)


def test_dead_child_raises_named_shard_error():
    """Regression: a blocking recv on a dead child used to deadlock.  The
    liveness check must fail fast with a ShardError naming the shard."""
    sharded = ShardedSimulation(echo_builders(), 42, parallel=True)
    victim = sharded.workers["right"]
    victim._proc.terminate()
    victim._proc.join(timeout=5)
    with pytest.raises(ShardError, match="right"):
        sharded.run(1.0)
    for worker in sharded.workers.values():
        assert not worker._proc.is_alive()


def test_stop_is_idempotent_on_dead_child():
    sharded = ShardedSimulation(echo_builders(), 42, parallel=True)
    for worker in sharded.workers.values():
        worker._proc.terminate()
        worker._proc.join(timeout=5)
    for worker in sharded.workers.values():
        worker.stop()
        worker.stop()  # second stop must be a clean no-op


# --- envelope frame codec -----------------------------------------------------


def test_envelope_frame_roundtrip():
    envelopes = [
        Envelope(
            arrival=0.125 + i * 1e-9, src_shard="left", src_index=0,
            seq=i + 1, dst_shard="right", port_id="l->r",
            packet=Packet(headers=(), payload=bytes([i]) * 32),
            sent_now=0.1,
        )
        for i in range(5)
    ]
    buf = encode_envelopes(envelopes)
    decoded, offset = decode_envelopes(buf)
    assert offset == len(buf)
    assert decoded == envelopes
    # Arrival doubles survive bit-exactly (the determinism-critical field).
    assert [e.arrival for e in decoded] == [e.arrival for e in envelopes]


def test_envelope_frame_roundtrip_empty():
    buf = encode_envelopes([])
    decoded, offset = decode_envelopes(buf)
    assert decoded == []
    assert offset == len(buf)


def test_envelope_frame_interns_strings():
    """The string table stores each shard/port id once, not per envelope."""
    envelopes = [
        Envelope(
            arrival=float(i), src_shard="left", src_index=0, seq=i,
            dst_shard="right", port_id="l->r",
            packet=Packet(headers=(), payload=b"x"),
        )
        for i in range(100)
    ]
    buf = encode_envelopes(envelopes)
    assert buf.count(b"l->r") == 1


# --- scale-scenario equivalence ----------------------------------------------


def test_scale_scenario_sharded_matches_monolithic():
    """The RUBiS scale scenario: per-zone stats from the sharded build must
    equal the monolithic twin's bit-for-bit (same RNG namespaces, same
    zone-local event order)."""
    from repro.scenarios.rubis_scale import (
        ScaleParams,
        build_scale_monolithic,
        scale_builders,
    )

    p = ScaleParams(
        n_zones=2, n_clients=2, n_web=1, n_filler_vms=2,
        n_racks=1, hosts_per_rack=2, media_prob=0.25, media_window=65536,
    )
    until = 3.0
    sharded = ShardedSimulation(scale_builders(p), 7)
    shard_res = sharded.run(until)

    sim, zones = build_scale_monolithic(7, p)
    sim.run(until=until)
    mono_res = {z.name: z.stats.as_dict() for z in zones}
    sim.close()

    assert shard_res == mono_res
    assert sum(z["sessions"] for z in shard_res.values()) > 0
    assert sum(z["errors"] for z in shard_res.values()) == 0
    assert sum(z["heartbeats_recv"] for z in shard_res.values()) > 0
    assert sharded.envelopes_routed > 0  # heartbeats crossed the boundary


def test_fleet_sharded_matches_monolithic():
    """Zone-spanning tenant fleets: cross-shard UDP chat (including multi-hop
    forwarding through intermediate zones) must produce identical stats in
    the sharded build and the monolithic twin."""
    from repro.scenarios.rubis_scale import (
        ScaleParams,
        build_scale_monolithic,
        scale_builders,
    )

    p = ScaleParams(
        n_zones=3, n_clients=1, n_web=1, n_filler_vms=2,
        n_racks=1, hosts_per_rack=2,
        n_fleets=3, fleet_size=3, fleet_placement="scatter",
    )
    until = 2.0
    sharded = ShardedSimulation(scale_builders(p), 7)
    shard_res = sharded.run(until)

    sim, zones = build_scale_monolithic(7, p)
    sim.run(until=until)
    mono_res = {z.name: z.stats.as_dict() for z in zones}
    sim.close()

    assert shard_res == mono_res
    assert sum(z["fleet_sent"] for z in shard_res.values()) > 0
    assert sum(z["fleet_recv"] for z in shard_res.values()) > 0


def test_fleet_affinity_placement_cuts_cross_shard_traffic():
    """The shard-aware placement pass must route fewer envelopes across
    shard boundaries than the scatter baseline on the same fleet load."""
    import dataclasses

    from repro.scenarios.rubis_scale import ScaleParams, plan_fleet, scale_builders

    base = ScaleParams(
        n_zones=3, n_clients=1, n_web=1, n_filler_vms=2,
        n_racks=1, hosts_per_rack=2, n_fleets=3, fleet_size=3,
    )
    counts = {}
    for placement in ("affinity", "scatter"):
        p = dataclasses.replace(base, fleet_placement=placement)
        sharded = ShardedSimulation(scale_builders(p), 7)
        sharded.run(2.0)
        counts[placement] = sharded.envelopes_routed
    assert counts["affinity"] < counts["scatter"]
    affinity_quality = plan_fleet(base).quality
    scatter_quality = plan_fleet(
        dataclasses.replace(base, fleet_placement="scatter")
    ).quality
    assert (
        affinity_quality["cross_weight_fraction"]
        < scatter_quality["cross_weight_fraction"]
    )
