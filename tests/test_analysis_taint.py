"""Secret-flow rule tests (SEC001/SEC002).

Each sink and declassifier in the taint model gets a seeded-broken fixture
(the rule must fire) and a clean twin (it must not).  The SEC001 positive
fixtures are the *actual* leak shapes the pass was built to catch —
including the VPN Finished leak it found in ``tls/vpn.py``.
"""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_source

HIP_PATH = "src/repro/hip/daemon.py"
VPN_PATH = "src/repro/tls/vpn.py"


def findings(source: str, rule: str, path: str = HIP_PATH) -> list:
    return [
        f
        for f in analyze_source(textwrap.dedent(source), path, rules={rule})
        if not f.suppressed and f.rule == rule
    ]


# ------------------------------------------------------------------ SEC001 --


def test_sec001_secret_to_flight_recorder():
    src = """
        def f(assoc):
            RECORDER.record("hip.keymat", keymat=assoc.keymat)
    """
    [finding] = findings(src, "SEC001")
    assert "flight recorder" in finding.message


def test_sec001_secret_to_metrics_name():
    src = """
        def f(assoc):
            METRICS.counter("hip." + str(assoc.session_key))
    """
    [finding] = findings(src, "SEC001")
    assert "metrics name" in finding.message


def test_sec001_secret_to_packet_param():
    src = """
        def f(pkt, assoc):
            pkt.add(HMAC_PARAM, assoc.keymat)
    """
    [finding] = findings(src, "SEC001")
    assert "packet parameter" in finding.message


def test_sec001_secret_to_builder():
    src = """
        def f(identity):
            return build_host_id(identity.private_key, b"host")
    """
    [finding] = findings(src, "SEC001")
    assert "builder" in finding.message


def test_sec001_secret_to_control_channel():
    # The exact leak shape SEC001 caught in tls/vpn.py: truncated master
    # secret sent as the Finished verify-data.
    src = """
        def f(self, tunnel):
            self._send_control(tunnel, "finished", tunnel.master_secret[:12])
    """
    [finding] = findings(src, "SEC001", path=VPN_PATH)
    assert "control channel" in finding.message


def test_sec001_secret_in_exception_message():
    src = """
        def f(assoc):
            raise HipError(f"bad keymat {assoc.keymat!r}")
    """
    [finding] = findings(src, "SEC001")
    assert "exception" in finding.message


def test_sec001_tracks_dataflow_through_locals():
    src = """
        def f(self, dh, peer_pub, tunnel):
            secret = dh.shared_secret(peer_pub)
            material = secret[:16]
            self._send_control(tunnel, "key", material)
    """
    assert len(findings(src, "SEC001", path=VPN_PATH)) == 1


def test_sec001_loop_carried_taint():
    # Taint assigned late in the loop body must reach the sink at its top.
    src = """
        def f(self, tunnel, chunks):
            data = b""
            for chunk in chunks:
                self._send_control(tunnel, "x", data)
                data = hkdf_expand(chunk, b"l", 16)
    """
    assert len(findings(src, "SEC001", path=VPN_PATH)) == 1


def test_sec001_clean_finished_prf_and_ciphertext():
    # tls_prf with a "finished" label is MAC-class (wire-safe); .encrypt()
    # declassifies; hmac digests are designed to be sent.
    src = """
        def f(self, tunnel, peer, rng, pkt):
            verify = tls_prf(tunnel.master_secret, b"vpn finished", tunnel.client_random, 12)
            self._send_control(tunnel, "finished", verify)
            wrapped = peer.encrypt(tunnel.premaster, rng)
            self._send_control(tunnel, "key", wrapped)
            pkt.add(HMAC_PARAM, key.digest(b"data"))
    """
    assert findings(src, "SEC001", path=VPN_PATH) == []


def test_sec001_finished_label_resolves_through_ifexp_name():
    # The connection.py idiom: label picked by role, both candidates Finished.
    src = """
        def f(self, conn, client_first):
            my_label = b"client finished" if client_first else b"server finished"
            verify = tls_prf(conn.master_secret, my_label, conn.randoms, 12)
            self._send_message(conn, FINISHED, verify)
    """
    assert findings(src, "SEC001", path="src/repro/tls/connection.py") == []


def test_sec001_non_finished_prf_is_secret():
    src = """
        def f(self, tunnel):
            keys = tls_prf(tunnel.master_secret, b"key expansion", tunnel.randoms, 64)
            self._send_control(tunnel, "keys", keys)
    """
    assert len(findings(src, "SEC001", path=VPN_PATH)) == 1


def test_sec001_suppressible_and_out_of_scope():
    src = """
        def f(self, tunnel):
            self._send_control(tunnel, "k", tunnel.keymat)  # repro: ignore[SEC001] -- test fixture
    """
    assert findings(src, "SEC001", path=VPN_PATH) == []
    leak = """
        def f(self, tunnel):
            self._send_control(tunnel, "k", tunnel.keymat)
    """
    # Same code outside hip/tls (or in tests) is out of the taint scope.
    assert findings(leak, "SEC001", path="src/repro/sim/engine.py") == []
    assert findings(leak, "SEC001", path="tests/test_tls_vpn_more.py") == []


# ------------------------------------------------------------------ SEC002 --


def test_sec002_mac_compared_with_eq():
    src = """
        def f(key, data, got):
            expect = key.digest(data)
            if expect != got:
                return False
    """
    [finding] = findings(src, "SEC002")
    assert "MAC-derived" in finding.message
    assert "ct_equal" in finding.message


def test_sec002_secret_compared_with_eq():
    src = """
        def f(assoc, got):
            return assoc.keymat == got
    """
    [finding] = findings(src, "SEC002")
    assert "secret" in finding.message


def test_sec002_hmac_digest_call_result():
    src = """
        def f(key, data, mac):
            if hmac_digest(key, data) == mac:
                return True
    """
    assert len(findings(src, "SEC002")) == 1


def test_sec002_clean_shapes():
    src = """
        def f(assoc, got, n):
            if not ct_equal(assoc.keymat, got):
                return False
            if len(assoc.keymat) == n:
                return True
            return got == b"public"
    """
    assert findings(src, "SEC002") == []


def test_sec002_suppressible():
    src = """
        def f(assoc, got):
            return assoc.keymat == got  # repro: ignore[SEC002] -- test fixture
    """
    assert findings(src, "SEC002") == []


def test_sec_rules_clean_on_identity_and_ordering_compares():
    # `is None`, `<`, membership — none of these are byte-compares.
    src = """
        def f(assoc, seq):
            if assoc.keymat is None:
                return
            if seq < assoc.window:
                return
            if assoc.state in ("ESTABLISHED",):
                return
    """
    assert findings(src, "SEC002") == []
