"""Workload generators and iperf measurement tests."""

import random

import pytest

from repro.apps.iperf import IperfResult, IperfServer, iperf_client, run_iperf
from repro.apps.workload import ClosedLoopClients, OpenLoopGenerator, Sample, WorkloadResult
from repro.metrics.stats import describe, mean, percentile, stdev
from repro.net.addresses import ipv4
from repro.net.tcp import TcpStack
from repro.net.topology import lan_pair

B = ipv4("10.0.0.2")


class TestWorkloadResult:
    def _result(self):
        r = WorkloadResult(started_at=0.0, finished_at=10.0)
        for i in range(8):
            r.samples.append(Sample(start=i, latency=0.1 * (i + 1), ok=i % 4 != 3,
                                    kind="ViewItem"))
        return r

    def test_throughput_counts_only_successes(self):
        r = self._result()
        assert r.successes == 6
        assert r.failures == 2
        assert r.throughput == pytest.approx(0.6)

    def test_latencies_filter(self):
        r = self._result()
        assert len(r.latencies(only_ok=True)) == 6
        assert len(r.latencies(only_ok=False)) == 8

    def test_mean_latency(self):
        r = self._result()
        assert r.mean_latency() == pytest.approx(mean(r.latencies()))


class TestStats:
    def test_mean_stdev(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        assert mean(xs) == 2.5
        assert stdev(xs) == pytest.approx(1.2909944)

    def test_percentile_interpolates(self):
        xs = [0.0, 10.0]
        assert percentile(xs, 50) == 5.0
        assert percentile(xs, 0) == 0.0
        assert percentile(xs, 100) == 10.0

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_describe_empty(self):
        summary = describe([])
        assert summary.n == 0

    def test_describe(self):
        summary = describe(range(101))
        assert summary.n == 101
        assert summary.p50 == 50
        assert summary.minimum == 0 and summary.maximum == 100


def _trivial_web(sim, tcp_server):
    """A minimal HTTP responder answering every RUBiS path with 200."""
    from repro.apps.http import HttpResponse, read_request, write_response
    from repro.apps.streams import BufferedReader, PlainStream, StreamClosed
    from repro.net.packet import VirtualPayload
    from repro.net.tcp import TcpError

    def serve_conn(conn):
        stream = PlainStream(conn)
        reader = BufferedReader(stream)
        try:
            while True:
                yield from read_request(reader)
                yield from write_response(
                    stream, HttpResponse(status=200, body=VirtualPayload(2048)),
                )
        except (StreamClosed, TcpError):
            return

    def acceptor():
        listener = tcp_server.listen(80)
        while True:
            conn = yield listener.accept()
            sim.process(serve_conn(conn))

    sim.process(acceptor())


class TestClosedLoop:
    def test_generates_and_measures(self, sim):
        a, b = lan_pair(sim, "clients", "web")
        ta, tb = TcpStack(a), TcpStack(b)
        _trivial_web(sim, tb)
        workload = ClosedLoopClients(a, ta, B, 80, n_clients=5,
                                     rng=random.Random(1), warmup=0.5)
        done = sim.process(workload.run(3.0))
        result = sim.run(until=done)
        assert result.failures == 0
        assert result.successes > 100  # fast LAN, 5 clients, 3 seconds
        assert 0 < result.mean_latency() < 0.05
        # Samples only from the measured window.
        assert all(s.start >= result.started_at for s in result.samples)

    def test_timeout_counts_failure(self, sim):
        a, b = lan_pair(sim, "clients", "web")
        ta, tb = TcpStack(a), TcpStack(b)
        # No web server at all: requests cannot complete.
        workload = ClosedLoopClients(a, ta, B, 80, n_clients=2,
                                     rng=random.Random(1), timeout=0.3)
        done = sim.process(workload.run(2.0))
        result = sim.run(until=done)
        assert result.successes == 0
        assert result.failures > 0

    def test_think_time_reduces_rate(self, sim):
        a, b = lan_pair(sim, "clients", "web")
        ta, tb = TcpStack(a), TcpStack(b)
        _trivial_web(sim, tb)
        workload = ClosedLoopClients(a, ta, B, 80, n_clients=3,
                                     rng=random.Random(1), think_time=0.1)
        done = sim.process(workload.run(3.0))
        result = sim.run(until=done)
        # ~3 clients / 0.1 s think -> ~30/s ceiling (plus service time).
        assert result.throughput < 35


class TestOpenLoop:
    def test_fixed_rate_generation(self, sim):
        a, b = lan_pair(sim, "clients", "web")
        ta, tb = TcpStack(a), TcpStack(b)
        _trivial_web(sim, tb)
        generator = OpenLoopGenerator(a, ta, B, 80, rate=100.0,
                                      rng=random.Random(1))
        done = sim.process(generator.run(2.0))
        result = sim.run(until=done)
        assert result.successes == 200  # 100/s x 2 s, all served
        assert result.mean_latency() < 0.05

    def test_rate_validation(self, sim):
        a, b = lan_pair(sim, "clients", "web")
        ta = TcpStack(a)
        with pytest.raises(ValueError):
            OpenLoopGenerator(a, ta, B, 80, rate=0, rng=random.Random(1))

    def test_unreachable_counts_failures(self, sim):
        a, b = lan_pair(sim, "clients", "web")
        ta = TcpStack(a)
        generator = OpenLoopGenerator(a, ta, B, 80, rate=50.0,
                                      rng=random.Random(1), timeout=0.5)
        done = sim.process(generator.run(1.0))
        result = sim.run(until=done)
        assert result.successes == 0
        assert result.failures == 50


class TestIperf:
    def test_throughput_close_to_link_rate(self, sim):
        a, b = lan_pair(sim, "sender", "receiver", bandwidth_bps=100e6,
                        delay_s=5e-4)
        ta, tb = TcpStack(a), TcpStack(b)
        proc = sim.process(run_iperf(tb, ta, B, n_bytes=8_000_000))
        result = sim.run(until=proc)
        assert isinstance(result, IperfResult)
        assert result.bytes_received == 8_000_000
        assert 80 < result.throughput_mbps <= 101

    def test_result_uses_receiver_timing(self, sim):
        a, b = lan_pair(sim, "sender", "receiver", bandwidth_bps=50e6)
        ta, tb = TcpStack(a), TcpStack(b)
        proc = sim.process(run_iperf(tb, ta, B, n_bytes=1_000_000))
        result = sim.run(until=proc)
        assert result.duration > 0
        assert result.first_byte_at > 0

    def test_small_window_limits_throughput(self, sim):
        a, b = lan_pair(sim, "sender", "receiver", bandwidth_bps=1e9,
                        delay_s=5e-3)
        ta, tb = TcpStack(a), TcpStack(b)
        out = {}

        def flow():
            server = IperfServer(tb, port=5001, window=8_000)
            measurement = sim.process(server.measure_once())
            sim.process(iperf_client(ta, B, 2_000_000, port=5001))
            out["result"] = yield measurement

        proc = sim.process(flow())
        sim.run(until=proc)
        # 8 KB window over ~10.2 ms RTT: ~6.3 Mbit/s ceiling.
        assert out["result"].throughput_mbps < 8
