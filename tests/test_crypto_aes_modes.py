"""AES known-answer tests (FIPS-197) and mode properties."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES, INV_SBOX, SBOX
from repro.crypto.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ctr_keystream_xor,
    pkcs7_pad,
    pkcs7_unpad,
)

FIPS_PLAIN = bytes.fromhex("00112233445566778899aabbccddeeff")


class TestAesBlock:
    def test_sbox_is_permutation(self):
        assert sorted(SBOX) == list(range(256))
        assert all(INV_SBOX[SBOX[x]] == x for x in range(256))

    def test_fips197_aes128(self):
        aes = AES(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
        ct = aes.encrypt_block(FIPS_PLAIN)
        assert ct.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"
        assert aes.decrypt_block(ct) == FIPS_PLAIN

    def test_fips197_aes192(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
        aes = AES(key)
        ct = aes.encrypt_block(FIPS_PLAIN)
        assert ct.hex() == "dda97ca4864cdfe06eaf70a0ec0d7191"
        assert aes.decrypt_block(ct) == FIPS_PLAIN

    def test_fips197_aes256(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
        )
        aes = AES(key)
        ct = aes.encrypt_block(FIPS_PLAIN)
        assert ct.hex() == "8ea2b7ca516745bfeafc49904b496089"
        assert aes.decrypt_block(ct) == FIPS_PLAIN

    def test_bad_key_sizes(self):
        for n in (0, 15, 17, 31, 33):
            with pytest.raises(ValueError):
                AES(bytes(n))

    def test_bad_block_sizes(self):
        aes = AES(bytes(16))
        with pytest.raises(ValueError):
            aes.encrypt_block(bytes(15))
        with pytest.raises(ValueError):
            aes.decrypt_block(bytes(17))

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    @settings(max_examples=30)
    def test_roundtrip_random(self, key, block):
        aes = AES(key)
        assert aes.decrypt_block(aes.encrypt_block(block)) == block


class TestPkcs7:
    @given(st.binary(max_size=100))
    def test_roundtrip(self, data):
        assert pkcs7_unpad(pkcs7_pad(data)) == data

    def test_always_pads(self):
        assert len(pkcs7_pad(bytes(16))) == 32

    def test_rejects_bad_padding(self):
        with pytest.raises(ValueError):
            pkcs7_unpad(b"\x00" * 15 + b"\x03")
        with pytest.raises(ValueError):
            pkcs7_unpad(b"\x00" * 16)  # pad byte 0 invalid
        with pytest.raises(ValueError):
            pkcs7_unpad(b"")
        with pytest.raises(ValueError):
            pkcs7_unpad(b"\x01" * 15)  # not block aligned


class TestModes:
    @given(st.binary(max_size=200), st.binary(min_size=16, max_size=16))
    @settings(max_examples=30)
    def test_cbc_roundtrip(self, plaintext, iv):
        aes = AES(b"0123456789abcdef")
        assert cbc_decrypt(aes, iv, cbc_encrypt(aes, iv, plaintext)) == plaintext

    def test_cbc_iv_sensitivity(self):
        aes = AES(bytes(16))
        c1 = cbc_encrypt(aes, bytes(16), b"message")
        c2 = cbc_encrypt(aes, b"\x01" + bytes(15), b"message")
        assert c1 != c2

    def test_cbc_tamper_breaks_padding_or_content(self):
        aes = AES(bytes(16))
        ct = bytearray(cbc_encrypt(aes, bytes(16), b"sixteen byte msg"))
        ct[-1] ^= 0xFF
        try:
            out = cbc_decrypt(aes, bytes(16), bytes(ct))
        except ValueError:
            return  # padding error: detected
        assert out != b"sixteen byte msg"

    def test_cbc_rejects_bad_iv(self):
        aes = AES(bytes(16))
        with pytest.raises(ValueError):
            cbc_encrypt(aes, bytes(8), b"x")
        with pytest.raises(ValueError):
            cbc_decrypt(aes, bytes(8), bytes(16))

    def test_cbc_rejects_unaligned_ciphertext(self):
        aes = AES(bytes(16))
        with pytest.raises(ValueError):
            cbc_decrypt(aes, bytes(16), bytes(17))

    @given(st.binary(max_size=200))
    @settings(max_examples=30)
    def test_ctr_involution(self, data):
        aes = AES(b"fedcba9876543210")
        nonce = b"\x07" * 8
        assert ctr_keystream_xor(aes, nonce, ctr_keystream_xor(aes, nonce, data)) == data

    def test_ctr_counter_offset_consistency(self):
        """Encrypting block-by-block with counters equals one-shot encryption."""
        aes = AES(bytes(16))
        nonce = bytes(8)
        data = bytes(range(64))
        whole = ctr_keystream_xor(aes, nonce, data)
        parts = b"".join(
            ctr_keystream_xor(aes, nonce, data[i : i + 16], counter0=i // 16)
            for i in range(0, 64, 16)
        )
        assert whole == parts

    def test_ctr_nonce_validation(self):
        with pytest.raises(ValueError):
            ctr_keystream_xor(AES(bytes(16)), bytes(4), b"data")
