"""Extension tests: adaptive puzzles (DoS), ESP rekeying, DNSSEC."""

import random

import pytest

from repro.hip.daemon import HipDaemon
from repro.hip.dos import AdaptivePuzzlePolicy, install_adaptive_puzzle
from repro.net.addresses import ipv4
from repro.net.tcp import TcpStack
from repro.net.topology import lan_pair
from repro.sim import Simulator

A, B = ipv4("10.0.0.1"), ipv4("10.0.0.2")


class TestAdaptivePuzzle:
    def test_policy_schedule(self):
        policy = AdaptivePuzzlePolicy(base_k=4, max_k=20, calm_rate=10.0,
                                      k_per_doubling=2)
        assert policy.difficulty(1.0) == 4
        assert policy.difficulty(10.0) == 4
        assert policy.difficulty(40.0) == 8  # two doublings
        assert policy.difficulty(1e9) == 20  # capped

    def test_difficulty_escalates_under_i1_flood(self, hip_pair):
        sim, a, b, da, db = hip_pair
        controller = install_adaptive_puzzle(
            db, AdaptivePuzzlePolicy(base_k=2, calm_rate=5.0, window_s=0.5)
        )
        # Flood I1s from the initiator side (simulating many attackers).
        from repro.hip import packets as hp

        def flood():
            for _ in range(200):
                i1 = da._new_packet(hp.I1, db.hit)
                da._send_control(i1, B)
                yield sim.timeout(0.002)  # 500 I1/s

        proc = sim.process(flood())
        sim.run(until=proc)
        sim.run(until=sim.now + 1)
        assert controller.current_k > 2
        assert controller.escalations >= 1
        assert controller.r1_regenerations >= 2

    def test_difficulty_relaxes_when_calm(self, hip_pair):
        sim, a, b, da, db = hip_pair
        controller = install_adaptive_puzzle(
            db, AdaptivePuzzlePolicy(base_k=2, calm_rate=5.0, window_s=0.5)
        )
        from repro.hip import packets as hp

        def flood_then_calm():
            for _ in range(100):
                da._send_control(da._new_packet(hp.I1, db.hit), B)
                yield sim.timeout(0.002)
            yield sim.timeout(5.0)
            # One calm-period I1 triggers re-evaluation at low rate.
            da._send_control(da._new_packet(hp.I1, db.hit), B)
            yield sim.timeout(0.5)

        proc = sim.process(flood_then_calm())
        sim.run(until=proc)
        assert controller.current_k == 2  # back to base

    def test_association_still_works_with_adaptive_puzzle(self, hip_pair, drive):
        sim, a, b, da, db = hip_pair
        install_adaptive_puzzle(db, AdaptivePuzzlePolicy(base_k=6))
        assoc = drive(sim, da.associate(db.hit))
        assert assoc.is_established
        # The initiator solved at the controller's base difficulty.
        assert da.meter.ops.get("puzzle.solve") == 1


class TestRekeying:
    def test_rekey_swaps_spis_and_keys(self, hip_pair, drive):
        sim, a, b, da, db = hip_pair
        drive(sim, da.associate(db.hit))
        assoc_a = da.assocs[db.hit]
        old_spi_in = assoc_a.sa_in.spi
        old_key = assoc_a.sa_out.enc_key
        da.rekey(db.hit)
        sim.run(until=sim.now + 3)
        assert assoc_a.rekey_count == 1
        assert assoc_a.sa_in.spi != old_spi_in
        assert assoc_a.sa_out.enc_key != old_key
        assoc_b = db.assocs[da.hit]
        assert assoc_b.rekey_count == 1
        assert assoc_a.sa_out.spi == assoc_b.sa_in.spi
        assert assoc_a.sa_out.enc_key == assoc_b.sa_in.enc_key

    def test_data_flows_after_rekey(self, hip_pair):
        sim, a, b, da, db = hip_pair
        ta, tb = TcpStack(a), TcpStack(b)
        got = {}

        def server():
            listener = tb.listen(80)
            conn = yield listener.accept()
            got["first"] = yield from conn.recv_bytes(5)
            got["second"] = yield from conn.recv_bytes(5)

        def client():
            conn = yield sim.process(ta.open_connection(db.hit, 80))
            conn.write(b"12345")
            yield sim.timeout(1.0)  # quiesce
            da.rekey(db.hit)
            yield sim.timeout(1.0)  # let the rekey complete
            conn.write(b"67890")

        sim.process(server())
        sim.process(client())
        sim.run(until=60)
        assert got.get("first") == b"12345"
        assert got.get("second") == b"67890"

    def test_sequence_counters_reset_on_rekey(self, hip_pair, drive):
        sim, a, b, da, db = hip_pair
        drive(sim, da.associate(db.hit))
        assoc = da.assocs[db.hit]
        assoc.sa_out.seq = 999
        da.rekey(db.hit)
        sim.run(until=sim.now + 3)
        assert assoc.sa_out.seq == 0  # fresh SA, fresh replay state

    def test_repeated_rekeys(self, hip_pair, drive):
        sim, a, b, da, db = hip_pair
        drive(sim, da.associate(db.hit))
        for expected in (1, 2, 3):
            da.rekey(db.hit)
            sim.run(until=sim.now + 2)
            assert da.assocs[db.hit].rekey_count == expected
        # Each round derives distinct keys.
        assert da.assocs[db.hit].sa_out.enc_key != db.assocs[da.hit].sa_out.enc_key

    def test_rekey_requires_established(self, hip_pair):
        sim, a, b, da, db = hip_pair
        from repro.hip.daemon import HipError

        with pytest.raises(HipError):
            da.rekey(db.hit)


class TestDnssec:
    @pytest.fixture
    def dnssec_net(self, sim):
        from repro.crypto.rsa import RsaKeyPair
        from repro.net.dns import DnsRecord
        from repro.net.dnssec import SignedDnsServer, SignedZone, ValidatingResolver
        from repro.net.udp import UdpStack

        a, b = lan_pair(sim, "resolver", "server")
        ua, ub = UdpStack(a), UdpStack(b)
        keypair = RsaKeyPair.generate(512, random.Random(55))
        zone = SignedZone(keypair)
        zone.add(DnsRecord(name="web.cloud", rtype="A", ttl=30.0,
                           address=ipv4("10.0.0.9")))
        server = SignedDnsServer(b, ub, zone)
        resolver = ValidatingResolver(a, ua, B, trust_anchor=keypair.public)
        return sim, zone, server, resolver, keypair

    def test_validated_resolution(self, dnssec_net, drive):
        sim, zone, server, resolver, keypair = dnssec_net
        records = drive(sim, resolver.query("web.cloud", "A"))
        assert records[0].address == ipv4("10.0.0.9")
        assert resolver.validated == 1
        assert resolver.rejected == 0

    def test_wrong_trust_anchor_rejects(self, dnssec_net, sim):
        from repro.crypto.rsa import RsaKeyPair
        from repro.net.dnssec import DnssecError, ValidatingResolver
        from repro.net.udp import UdpStack

        _sim, zone, server, good_resolver, keypair = dnssec_net
        other_key = RsaKeyPair.generate(512, random.Random(77))
        bad_resolver = ValidatingResolver(
            good_resolver.node, good_resolver.udp, B,
            trust_anchor=other_key.public,
        )

        def flow():
            with pytest.raises(DnssecError):
                yield from bad_resolver.query("web.cloud", "A")
            return True

        proc = sim.process(flow())
        assert sim.run(until=proc) is True
        assert bad_resolver.rejected == 1

    def test_unsigned_server_rejected(self, sim):
        """A validating resolver must fail closed against a plain server."""
        from repro.crypto.rsa import RsaKeyPair
        from repro.net.dns import DnsRecord, DnsServer, Zone
        from repro.net.dnssec import DnssecError, ValidatingResolver
        from repro.net.udp import UdpStack

        a, b = lan_pair(sim, "resolver", "server")
        ua, ub = UdpStack(a), UdpStack(b)
        zone = Zone()
        zone.add(DnsRecord(name="web.cloud", rtype="A", ttl=30.0,
                           address=ipv4("10.0.0.9")))
        DnsServer(b, ub, zone=zone)
        keypair = RsaKeyPair.generate(512, random.Random(55))
        resolver = ValidatingResolver(a, ua, B, trust_anchor=keypair.public)

        def flow():
            with pytest.raises(DnssecError):
                yield from resolver.query("web.cloud", "A")
            return True

        proc = sim.process(flow())
        assert sim.run(until=proc) is True

    def test_empty_answer_validates_trivially(self, dnssec_net, drive):
        sim, zone, server, resolver, keypair = dnssec_net
        records = drive(sim, resolver.query("ghost.cloud", "A"))
        assert records == []

    def test_hip_records_signable(self, dnssec_net, drive, session_identities):
        sim, zone, server, resolver, keypair = dnssec_net
        from repro.hip.dnsproxy import publish_hip_host

        class FakeDaemon:
            hit = session_identities["a"].hit
            identity = session_identities["a"]

        publish_hip_host(zone, "hip-host.cloud", FakeDaemon, [ipv4("10.0.0.3")])
        records = drive(sim, resolver.query("hip-host.cloud", "HIP"))
        assert records[0].hit == session_identities["a"].hit
        assert resolver.rejected == 0


from repro.net.topology import lan_pair  # noqa: E402  (fixture helper)
