"""Interprocedural secret-flow tests (SEC003/SEC004) and the escape-set
fixpoint (``propagate_raises``) that VAL003 builds on.

SEC003/SEC004 fixtures are single modules in secret scope — the leak shapes
the intra-procedural pass (SEC001/SEC002) structurally cannot see: secrets
returned through helpers, sunk inside callees, or parked in innocuously
named attributes and read back elsewhere.
"""

from __future__ import annotations

import ast
import textwrap

from repro.analysis import analyze_source
from repro.analysis.base import ModuleContext
from repro.analysis.callgraph import build_program
from repro.analysis.dataflow import propagate_raises

HIP_PATH = "src/repro/hip/daemon.py"


def findings(source: str, rule: str, path: str = HIP_PATH) -> list:
    return [
        f
        for f in analyze_source(textwrap.dedent(source), path, rules={rule})
        if not f.suppressed and f.rule == rule
    ]


def program(*modules):
    ctxs = [
        ModuleContext(path=path, source=textwrap.dedent(src),
                      tree=ast.parse(textwrap.dedent(src)))
        for path, src in modules
    ]
    return build_program(ctxs)


# ------------------------------------------------------------------ SEC003 --


def test_sec003_secret_returned_through_helper_then_recorded():
    src = """
        def derive(assoc):
            return hip_keymat(assoc, 32)

        def install(assoc):
            km = derive(assoc)
            RECORDER.record("hip.install", km=km)
    """
    [finding] = findings(src, "SEC003")
    assert "call boundary" in finding.message
    assert "flight recorder" in finding.message


def test_sec003_secret_passed_into_sinking_callee():
    src = """
        def debug_dump(value):
            RECORDER.record("dbg", v=value)

        def f(assoc):
            debug_dump(assoc.keymat)
    """
    assert findings(src, "SEC003")


def test_sec003_two_hop_return_chain():
    src = """
        def inner(assoc):
            return hkdf_expand(assoc.keymat, b"salt", 32)

        def outer(assoc):
            return inner(assoc)

        def f(assoc, pkt):
            pkt.add(HMAC_PARAM, outer(assoc))
    """
    [finding] = findings(src, "SEC003")
    assert "packet parameter" in finding.message


def test_sec003_negative_declassified_before_sink():
    src = """
        def derive(assoc):
            return hip_keymat(assoc, 32)

        def install(assoc):
            km = derive(assoc)
            RECORDER.record("hip.install", km_len=len(km))
    """
    assert not findings(src, "SEC003")


def test_sec003_negative_intra_leak_is_sec001_territory():
    """A direct one-function leak belongs to SEC001; SEC003 must stay
    quiet so each finding has exactly one rule."""
    src = """
        def f(assoc):
            RECORDER.record("hip.keymat", keymat=assoc.keymat)
    """
    assert not findings(src, "SEC003")
    assert findings(src, "SEC001")


def test_sec003_negative_secret_kept_internal():
    src = """
        def derive(assoc):
            return hip_keymat(assoc, 32)

        def install(assoc):
            assoc.session_key = derive(assoc)
    """
    assert not findings(src, "SEC003")


# ------------------------------------------------------------------ SEC004 --


def test_sec004_attribute_roundtrip_to_recorder():
    src = """
        class Daemon:
            def setup(self, assoc):
                self._stash = hip_keymat(assoc, 32)

            def report(self):
                RECORDER.record("hip.debug", stash=self._stash)
    """
    [finding] = findings(src, "SEC004")
    assert "_stash" in finding.message
    assert "flight recorder" in finding.message


def test_sec004_message_names_assignment_origin():
    src = """
        class Daemon:
            def setup(self, assoc):
                self._stash = hip_keymat(assoc, 32)

            def report(self):
                RECORDER.record("hip.debug", stash=self._stash)
    """
    [finding] = findings(src, "SEC004")
    assert "assigned key material at" in finding.message


def test_sec004_negative_attribute_never_sunk():
    src = """
        class Daemon:
            def setup(self, assoc):
                self._stash = hip_keymat(assoc, 32)

            def use(self, pkt):
                return esp_encrypt(self._stash, pkt)
    """
    assert not findings(src, "SEC004")


def test_sec004_negative_clean_attribute():
    src = """
        class Daemon:
            def setup(self, count):
                self._stash = count

            def report(self):
                RECORDER.record("hip.debug", stash=self._stash)
    """
    assert not findings(src, "SEC004")


# -------------------------------------------------------- propagate_raises --


def test_propagate_raises_chain():
    _, graph = program(("src/repro/m.py", """
        def parse(data):
            pass

        def handle(data):
            parse(data)

        def serve(data):
            handle(data)
    """))
    local = {"repro.m.parse": frozenset({"struct.error"})}
    escapes = propagate_raises(graph, local, {})
    assert "struct.error" in escapes["repro.m.handle"]
    assert "struct.error" in escapes["repro.m.serve"]


def test_propagate_raises_stops_at_catching_caller():
    _, graph = program(("src/repro/m.py", """
        def parse(data):
            pass

        def serve(data):
            parse(data)
    """))
    local = {"repro.m.parse": frozenset({"struct.error"})}
    caught = {("repro.m.serve", "repro.m.parse"): frozenset({"struct.error"})}
    escapes = propagate_raises(graph, local, caught)
    assert "struct.error" not in escapes["repro.m.serve"]


def test_propagate_raises_partial_catch_leaves_rest():
    _, graph = program(("src/repro/m.py", """
        def parse(data):
            pass

        def serve(data):
            parse(data)
    """))
    local = {"repro.m.parse": frozenset({"struct.error", "IndexError"})}
    caught = {("repro.m.serve", "repro.m.parse"): frozenset({"struct.error"})}
    escapes = propagate_raises(graph, local, caught)
    assert escapes["repro.m.serve"] == frozenset({"IndexError"})


def test_propagate_raises_through_cycle():
    _, graph = program(("src/repro/m.py", """
        def a(n):
            b(n)

        def b(n):
            a(n)

        def entry(n):
            a(n)
    """))
    local = {"repro.m.b": frozenset({"IndexError"})}
    escapes = propagate_raises(graph, local, {})
    assert "IndexError" in escapes["repro.m.a"]
    assert "IndexError" in escapes["repro.m.entry"]
