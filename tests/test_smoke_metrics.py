"""Smoke test: tiny end-to-end RUBiS run with the observability layer on.

Run standalone with ``pytest -m smoke``; it also rides in the default
collection.  One second of simulated closed-loop load against the smallest
deployment, flight recorder enabled, then the ``repro-metrics/1`` report is
checked for well-formedness and the per-layer counts for plausibility.
"""

import json

import pytest

from repro.apps.workload import ClosedLoopClients
from repro.metrics import METRICS, RECORDER
from repro.metrics.report import (
    SCHEMA_VERSION,
    metrics_json,
    render_report,
    write_json_report,
)
from repro.scenarios.rubis_cloud import FRONTEND_PORT, build_rubis_cloud


@pytest.mark.smoke
def test_smoke_rubis_run_emits_well_formed_metrics(tmp_path):
    METRICS.reset()
    RECORDER.clear()
    try:
        RECORDER.enable()
        dep = build_rubis_cloud(seed=7, security="basic", n_web=1, extra_tenants=0)
        clients = ClosedLoopClients(
            dep.client_node, dep.client_tcp, dep.frontend_addr, FRONTEND_PORT,
            n_clients=2, rng=dep.rngs.stream("smoke"), timeout=2.0, warmup=0.2,
        )
        proc = dep.sim.process(clients.run(1.0))
        result = dep.sim.run(until=proc)
        assert result.successes > 0

        payload = metrics_json(METRICS, RECORDER, extra={"scenario": "smoke"})
        # Well-formed, strict JSON (would raise on NaN).
        parsed = json.loads(json.dumps(payload, allow_nan=False))
        assert parsed["schema"] == SCHEMA_VERSION

        counters = parsed["counters"]
        assert counters["proxy.requests"] > 0
        assert counters["proxy.responses"] == counters["proxy.requests"]
        assert counters["tcp.segments_sent"] > counters["proxy.requests"]
        assert counters["link.tx_packets"] > 0
        assert counters["sim.steps"] > counters["link.tx_packets"]
        # Layer regrouping matches the flat counter namespace.
        assert parsed["layers"]["proxy"]["requests"] == counters["proxy.requests"]

        hist = parsed["histograms"]["proxy.request_s"]
        assert hist["count"] == counters["proxy.responses"]
        assert 0 < hist["p50"] <= hist["p95"] <= hist["max"]

        fr = parsed["flight_recorder"]
        assert fr["enabled"] and fr["recorded"] > 0
        assert fr["by_event"].get("link.tx", 0) > 0
        assert len(parsed["trace"]) == fr["buffered"]

        out = write_json_report(tmp_path / "smoke.metrics.json",
                                METRICS, RECORDER, extra={"scenario": "smoke"})
        assert json.loads(out.read_text())["extra"] == {"scenario": "smoke"}

        lines = render_report(METRICS, RECORDER)
        assert lines[0] == "== metrics report =="
        assert any(line.lstrip().startswith("proxy") for line in lines)
    finally:
        RECORDER.disable()
        RECORDER.clear()
        METRICS.reset()
