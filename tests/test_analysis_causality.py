"""Runtime causality-sanitizer tests.

A clean sharded run stays silent; three deliberately broken toy shards —
a late envelope, a schedule into the past, and an object smuggled across a
portal-less boundary — each produce a violation naming the offending shard
and its simulated time.
"""

from __future__ import annotations

import pytest

from repro.analysis.causality import (
    CausalitySanitizer,
    CausalityViolation,
    causality_sanitizer,
)
from repro.net.packet import Packet
from repro.sim import shard as shard_mod
from repro.sim.shard import Envelope, Shard, ShardedSimulation
from tests.test_shard import CROSS_DELAY, echo_builders

LOOKAHEAD = CROSS_DELAY


def _packet() -> Packet:
    return Packet(headers=(), payload=b"x" * 64)


class _Sink:
    """Minimal ingress landing point."""

    def __init__(self):
        self.received = 0

    def receive(self, packet):
        self.received += 1


def _sink_builder(shard, port_id="x->sink"):
    shard.open_ingress(port_id, _Sink())
    shard.result_fn = lambda: None


# ------------------------------------------------------------------- clean --


def test_clean_echo_run_is_silent():
    with causality_sanitizer() as tap:
        sharded = ShardedSimulation(echo_builders(), 42)
        results = sharded.run(1.0)
    assert results["left"]["echoed"] == 20
    assert not tap.violations
    assert tap.shards_seen == 2
    assert tap.envelopes_checked == sharded.envelopes_routed == 40
    assert tap.schedules_checked > 0
    assert "0 violation(s)" in tap.describe()


def test_context_manager_installs_and_removes_tap():
    assert not shard_mod.CAUSALITY_TAPS
    with causality_sanitizer() as tap:
        assert shard_mod.CAUSALITY_TAPS == [tap]
    assert not shard_mod.CAUSALITY_TAPS


# ----------------------------------------------------------- late envelope --


def _late_envelope_builder(shard, arrival_frac):
    """A buggy portal: hand-computes an arrival ``arrival_frac`` lookaheads
    after the send clock (< 1.0 violates the conservative contract)."""
    portal = shard.open_egress("x->sink", "sink", 1e9, LOOKAHEAD)
    sim = shard.sim

    def corrupt():
        shard._env_seq += 1
        portal.out.append(
            Envelope(
                arrival=sim.now + arrival_frac * LOOKAHEAD,
                src_shard=shard.name,
                src_index=shard.index,
                seq=shard._env_seq,
                dst_shard="sink",
                port_id="x->sink",
                packet=_packet(),
                sent_now=sim.now,
            )
        )

    sim.call_later(LOOKAHEAD / 4, corrupt)
    shard.result_fn = lambda: None


def _late_envelope_sim(arrival_frac):
    return ShardedSimulation(
        {
            "bad": (_late_envelope_builder, {"arrival_frac": arrival_frac}),
            "sink": (_sink_builder, {}),
        },
        seed=1,
        lookahead=LOOKAHEAD,
    )


def test_late_envelope_raises_with_shard_and_time():
    sharded = _late_envelope_sim(arrival_frac=0.85)
    with causality_sanitizer():
        with pytest.raises(CausalityViolation) as exc:
            sharded.run(LOOKAHEAD * 4)
    msg = str(exc.value)
    assert "late-envelope" in msg
    assert "shard 'bad'" in msg
    assert "t=" in msg


def test_late_envelope_accumulates_when_not_strict():
    # arrival_frac=0.85 puts the arrival past the window barrier (so the
    # coordinator's own LookaheadError stays quiet) but inside the
    # sent_now + lookahead bound — only the sanitizer sees it.
    sharded = _late_envelope_sim(arrival_frac=0.85)
    with causality_sanitizer(strict=False) as tap:
        sharded.run(LOOKAHEAD * 4)
    [violation] = tap.violations
    assert violation.kind == "late-envelope"
    assert violation.shard == "bad"
    assert violation.time == pytest.approx(LOOKAHEAD / 4)


# ------------------------------------------------------ schedule-in-the-past --


def _past_schedule_builder(shard):
    sim = shard.sim

    def rewind():
        sim.call_at(sim.now - 1.0, lambda: None)

    sim.call_later(LOOKAHEAD / 2, rewind)
    shard.result_fn = lambda: None


def test_schedule_into_the_past_raises_with_shard_and_time():
    # The sanitizer must be installed at construction: on_shard wraps each
    # shard's call_later/call_at as the shard is built.
    with causality_sanitizer():
        sharded = ShardedSimulation(
            {"rewinder": (_past_schedule_builder, {})},
            seed=1,
            lookahead=LOOKAHEAD,
        )
        with pytest.raises(CausalityViolation) as exc:
            sharded.run(LOOKAHEAD * 2)
    msg = str(exc.value)
    assert "past-schedule" in msg
    assert "shard 'rewinder'" in msg
    assert "t=" in msg


def test_negative_delay_is_a_past_schedule():
    with causality_sanitizer() as tap:
        shard = Shard("solo", 0, seed=3)
        with pytest.raises(CausalityViolation) as exc:
            shard.sim.call_later(-0.5, lambda: None)
    assert "past-schedule" in str(exc.value)
    assert tap.violations[0].shard == "solo"
    shard.sim.close()


# ---------------------------------------------------------- smuggled object --


def test_object_smuggled_across_shards_is_flagged():
    # An object owned by shard "a" scheduled into shard "b" without ever
    # crossing a portal: the inline-mode aliasing bug the forked mode can't
    # even express.
    with causality_sanitizer() as tap:
        shard_a = Shard("a", 0, seed=3)
        shard_b = Shard("b", 1, seed=3)
        contraband = tap.track(_packet(), "a")
        with pytest.raises(CausalityViolation) as exc:
            shard_b.sim.call_later(0.1, lambda p: None, contraband)
        msg = str(exc.value)
        assert "smuggled-object" in msg
        assert "shard 'b'" in msg and "'a'" in msg
        assert "t=" in msg
        shard_a.sim.close()
        shard_b.sim.close()


def test_smuggled_receiver_and_closure_are_flagged():
    with causality_sanitizer(strict=False) as tap:
        shard_a = Shard("a", 0, seed=3)
        shard_b = Shard("b", 1, seed=3)
        # Bound method whose receiver belongs to the other shard.
        sink = tap.track(_Sink(), "a")
        shard_b.sim.call_later(0.1, sink.receive)
        # Closure capturing the other shard's simulator.
        foreign_sim = shard_a.sim  # tagged by on_shard

        def poke():
            return foreign_sim.now

        shard_b.sim.call_later(0.1, poke)
        shard_a.sim.close()
        shard_b.sim.close()
    kinds = [v.kind for v in tap.violations]
    assert kinds == ["smuggled-object", "smuggled-object"]
    assert all(v.shard == "b" for v in tap.violations)


def test_portal_crossing_transfers_ownership():
    # The sanctioned path: after routing, the packet belongs to the
    # destination shard — re-scheduling it there is legal.
    with causality_sanitizer() as tap:
        sharded = ShardedSimulation(echo_builders(), 42)
        sharded.run(0.1)
    # Every packet that crossed is now owned by whichever shard it landed
    # in; no violation was recorded for the echo-back path.
    assert not tap.violations
    assert tap.envelopes_checked > 0


def test_sanitizer_survives_parallel_fork():
    # Taps are inherited across the worker fork; a clean run must stay
    # clean and bit-identical to the unsanitized run.
    with causality_sanitizer():
        sanitized = ShardedSimulation(echo_builders(), 42, parallel=True)
        sanitized_res = sanitized.run(1.0)
    plain = ShardedSimulation(echo_builders(), 42, parallel=True)
    plain_res = plain.run(1.0)
    assert sanitized_res == plain_res
    assert sanitized.boundary_digest == plain.boundary_digest


def test_describe_counts():
    tap = CausalitySanitizer()
    assert "0 shard(s)" in tap.describe()
    assert "0 violation(s)" in tap.describe()
