"""Differential tests pinning the optimized crypto fast path to the naive
reference implementations retained in ``repro.crypto._reference`` (and, for
the AES block itself, ``AES._encrypt_block_ref``).

These complement the fixed known-answer vectors in
``test_crypto_primitives.py`` / ``test_crypto_aes_modes.py``: randomized
inputs catch the word-packing and padding edge cases a handful of published
vectors can miss.  Also asserts the new crypto-op METRICS counters, in
particular that ESP's virtual-payload fast path performs zero AES block
operations.
"""

import hashlib
import hmac as stdlib_hmac
import random
import struct

import pytest

from repro.crypto._reference import (
    cbc_decrypt_ref,
    cbc_encrypt_ref,
    ctr_keystream_xor_ref,
    hmac_digest_ref,
    sha1_ref,
    sha256_ref,
)
from repro.crypto.aes import AES
from repro.crypto.hmac_kdf import HmacKey, hkdf_expand, hmac_digest
from repro.crypto.modes import cbc_decrypt, cbc_encrypt, ctr_keystream_xor
from repro.crypto.sha import sha1, sha256
from repro.metrics import METRICS

from tests.test_hip_esp import make_sa, sample_inner
from repro.net.packet import VirtualPayload

# Lengths that straddle every Merkle-Damgard padding boundary plus block
# alignment corners for the modes.
EDGE_LENS = [0, 1, 15, 16, 17, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128, 129]


class TestAesBlockDifferential:
    @pytest.mark.parametrize("key_len", [16, 24, 32])
    def test_encrypt_matches_reference(self, key_len):
        rng = random.Random(0xA15 + key_len)
        for _ in range(40):
            aes = AES(rng.randbytes(key_len))
            block = rng.randbytes(16)
            assert aes.encrypt_block(block) == aes._encrypt_block_ref(block)

    @pytest.mark.parametrize("key_len", [16, 24, 32])
    def test_decrypt_matches_reference(self, key_len):
        rng = random.Random(0xDE5 + key_len)
        for _ in range(40):
            aes = AES(rng.randbytes(key_len))
            block = rng.randbytes(16)
            assert aes.decrypt_block(block) == aes._decrypt_block_ref(block)

    def test_roundtrip_random(self):
        rng = random.Random(7)
        for key_len in (16, 24, 32):
            aes = AES(rng.randbytes(key_len))
            for _ in range(20):
                block = rng.randbytes(16)
                assert aes.decrypt_block(aes.encrypt_block(block)) == block


class TestModesDifferential:
    def test_cbc_matches_reference(self):
        rng = random.Random(0xCBC)
        for trial in range(60):
            aes = AES(rng.randbytes(16))
            iv = rng.randbytes(16)
            n = EDGE_LENS[trial % len(EDGE_LENS)] if trial < 32 else rng.randrange(0, 400)
            pt = rng.randbytes(n)
            ct = cbc_encrypt(aes, iv, pt)
            assert ct == cbc_encrypt_ref(aes, iv, pt)
            assert cbc_decrypt(aes, iv, ct) == pt
            assert cbc_decrypt_ref(aes, iv, ct) == pt

    def test_ctr_matches_reference(self):
        rng = random.Random(0xC12)
        for trial in range(60):
            aes = AES(rng.randbytes(16))
            nonce = rng.randbytes(8)
            n = EDGE_LENS[trial % len(EDGE_LENS)] if trial < 32 else rng.randrange(0, 400)
            data = rng.randbytes(n)
            counter0 = rng.choice([0, 1, 0xFFFFFFFF, 2**63])
            ks = ctr_keystream_xor(aes, nonce, data, counter0)
            assert ks == ctr_keystream_xor_ref(aes, nonce, data, counter0)
            # XOR is an involution: applying it twice restores the data.
            assert ctr_keystream_xor(aes, nonce, ks, counter0) == data

    def test_ctr_counter_straddles_word_boundary(self):
        # counter0 near 2**32 exercises the high-word carry in the split
        # (counter >> 32, counter & 0xFFFFFFFF) counter representation.
        aes = AES(bytes(range(16)))
        nonce = bytes(8)
        data = bytes(64)
        for counter0 in (0xFFFFFFFE, 0xFFFFFFFF, 0x100000000):
            assert ctr_keystream_xor(aes, nonce, data, counter0) == ctr_keystream_xor_ref(
                aes, nonce, data, counter0
            )


class TestShaDifferential:
    def test_sha1_matches_reference_and_hashlib(self):
        rng = random.Random(1)
        msgs = [bytes(n) for n in EDGE_LENS] + [rng.randbytes(rng.randrange(0, 500)) for _ in range(30)]
        for msg in msgs:
            d = sha1(msg)
            assert d == sha1_ref(msg)
            assert d == hashlib.sha1(msg).digest()

    def test_sha256_matches_reference_and_hashlib(self):
        rng = random.Random(2)
        msgs = [bytes(n) for n in EDGE_LENS] + [rng.randbytes(rng.randrange(0, 500)) for _ in range(30)]
        for msg in msgs:
            d = sha256(msg)
            assert d == sha256_ref(msg)
            assert d == hashlib.sha256(msg).digest()


class TestHmacDifferential:
    @pytest.mark.parametrize("hash_name", ["sha1", "sha256"])
    def test_backends_agree_with_stdlib_and_reference(self, hash_name):
        rng = random.Random(3)
        # Short, block-sized and over-long keys (the >64-byte key is hashed
        # down first — a separate code path in RFC 2104).
        keys = [b"", b"k", rng.randbytes(20), rng.randbytes(64), rng.randbytes(100)]
        msgs = [bytes(n) for n in EDGE_LENS] + [rng.randbytes(200)]
        for key in keys:
            fast = HmacKey(key, hash_name, backend="fast")
            pure = HmacKey(key, hash_name, backend="pure")
            for msg in msgs:
                expect = stdlib_hmac.new(key, msg, hash_name).digest()
                assert fast.digest(msg) == expect
                assert pure.digest(msg) == expect
                assert hmac_digest_ref(key, msg, hash_name) == expect

    def test_one_shot_wrapper(self):
        assert hmac_digest(b"key", b"msg", "sha1") == stdlib_hmac.new(b"key", b"msg", "sha1").digest()

    def test_hkdf_expand_uses_real_digest_length(self):
        # Satellite fix: digest length must come from DIGEST_SIZES, not a
        # throwaway hmac call.  Cross-check output against a manual expand.
        prk = bytes(range(32))
        info = b"ctx"
        okm = hkdf_expand(prk, info, 70, "sha1")
        t1 = stdlib_hmac.new(prk, info + b"\x01", "sha1").digest()
        t2 = stdlib_hmac.new(prk, t1 + info + b"\x02", "sha1").digest()
        t3 = stdlib_hmac.new(prk, t2 + info + b"\x03", "sha1").digest()
        t4 = stdlib_hmac.new(prk, t3 + info + b"\x04", "sha1").digest()
        assert okm == (t1 + t2 + t3 + t4)[:70]
        with pytest.raises(ValueError):
            hkdf_expand(prk, info, 255 * 20 + 1, "sha1")


class TestCryptoCounters:
    def test_cbc_counts_blocks_and_bytes(self):
        aes_blocks = METRICS.counter("crypto.aes_blocks")
        aes_bytes = METRICS.counter("crypto.aes_bytes")
        aes = AES(bytes(16))
        b0, y0 = aes_blocks.value, aes_bytes.value
        cbc_encrypt(aes, bytes(16), bytes(100))  # pads to 112 bytes = 7 blocks
        assert aes_blocks.value - b0 == 7
        assert aes_bytes.value - y0 == 112

    def test_hmac_counts_ops_and_bytes(self):
        hmac_ops = METRICS.counter("crypto.hmac_ops")
        hmac_bytes = METRICS.counter("crypto.hmac_bytes")
        hk = HmacKey(b"key", "sha1")
        o0, y0 = hmac_ops.value, hmac_bytes.value
        hk.digest(bytes(10))
        hk.digest(bytes(300))
        assert hmac_ops.value - o0 == 2
        assert hmac_bytes.value - y0 == 310

    def test_esp_virtual_payload_does_zero_aes_blocks(self):
        # The cost-model fast path for virtual payloads must never touch the
        # real cipher — this is what keeps large simulated transfers cheap.
        aes_blocks = METRICS.counter("crypto.aes_blocks")
        out_sa, in_sa = make_sa(), make_sa()
        inner = sample_inner(VirtualPayload(1400))
        before = aes_blocks.value
        header, ct = out_sa.protect(inner)
        assert ct.ciphertext is None
        in_sa.verify(header, ct)
        assert aes_blocks.value == before

    def test_esp_real_payload_does_aes_blocks(self):
        aes_blocks = METRICS.counter("crypto.aes_blocks")
        out_sa, in_sa = make_sa(), make_sa()
        inner = sample_inner(b"x" * 100)
        before = aes_blocks.value
        header, ct = out_sa.protect(inner)
        in_sa.verify(header, ct)
        assert aes_blocks.value > before
