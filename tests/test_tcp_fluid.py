"""Fluid fast-forward TCP: entry, exit, accounting and cross-engine parity.

A cwnd-stabilised bulk flow leaves per-packet simulation and advances as a
closed-form rate integral (``min(cwnd, peer_window) / srtt``), re-entering
packet mode when disturbed.  These tests pin the contract: the stream the
receiver sees is byte-identical, the skipped segments' dataplane costs are
still charged, disturbances (competing flow, rekey epoch bump) force an
exit, and the whole dance is bit-identical across engine modes.
"""

import repro.sim.engine as engine
from repro.metrics import METRICS
from repro.net.packet import VirtualPayload
from repro.net.tcp import TcpStack
from repro.net.topology import lan_pair
from repro.sim.engine import Simulator

N_BYTES = 2_000_000
WINDOW = 65536
DELAY = 0.02  # 40 ms RTT: fluid rate ~1.6 MB/s, several 0.25 s chunks
PORT = 5001


def run_transfer(
    fluid=True,
    flow_guard=True,
    payload=None,
    disturb=None,
    n_bytes=N_BYTES,
):
    """One window-limited bulk server->client transfer.

    ``disturb`` is an optional ``(at, fn)`` pair; ``fn(sim, ctx)`` runs at
    sim-time ``at`` with ``ctx`` holding the nodes and stacks.
    """
    sim = Simulator()
    node_a, node_b = lan_pair(sim, delay_s=DELAY)
    tcp_a, tcp_b = TcpStack(node_a), TcpStack(node_b)
    data = payload if payload is not None else VirtualPayload(n_bytes, tag="bulk")
    collect = isinstance(data, (bytes, bytearray))
    out = {
        "received": bytearray(),
        "received_n": 0,
        "done_at": None,
        "server_conn": None,
    }

    listener = tcp_b.listen(PORT, fluid=fluid, fluid_flow_guard=flow_guard)

    def server():
        conn = yield listener.accept()
        out["server_conn"] = conn
        yield conn.rx.get()  # the go-ahead
        conn.write(data)
        while True:  # wait for the client's FIN
            chunk = yield conn.rx.get()
            if not chunk:
                break
        conn.close()

    def client():
        conn = yield sim.process(
            tcp_a.open_connection(node_b.addresses()[0], PORT, recv_window=WINDOW)
        )
        conn.write(b"go")
        while out["received_n"] < n_bytes:
            chunk = yield conn.rx.get()
            if not chunk:
                break
            out["received_n"] += len(chunk)
            if collect:
                out["received"] += bytes(chunk)
        out["done_at"] = sim.now
        conn.close()
        while True:  # drain to EOF
            chunk = yield conn.rx.get()
            if not chunk:
                break

    sim.process(server())
    sim.process(client())
    if disturb is not None:
        at, fn = disturb
        ctx = {
            "sim": sim, "node_a": node_a, "node_b": node_b,
            "tcp_a": tcp_a, "tcp_b": tcp_b,
        }
        sim.call_later(at, lambda: fn(sim, ctx))
    segs_before = METRICS.counter("tcp.segments_sent").value
    sim.run(until=120)
    out["segments"] = METRICS.counter("tcp.segments_sent").value - segs_before
    sim.close()
    return out


def test_fluid_transfer_completes_with_clean_exit():
    out = run_transfer(fluid=True)
    conn = out["server_conn"]
    assert out["received_n"] == N_BYTES
    assert conn.fluid_enters >= 1
    assert conn.fluid_bytes > 0
    assert [e[0] for e in conn.fluid_log if e[0].startswith("exit")] == [
        "exit:complete"
    ]


def test_real_bytes_never_fast_forward():
    """Only virtual payloads may skip the wire: a concrete byte stream must
    travel as segments (and arrive intact) even on a fluid listener."""
    payload = bytes(range(256)) * (N_BYTES // 256)
    out = run_transfer(fluid=True, payload=payload)
    conn = out["server_conn"]
    assert bytes(out["received"]) == payload
    assert conn.fluid_enters == 0
    assert conn.fluid_bytes == 0


def test_fluid_skips_most_segments():
    packet = run_transfer(fluid=False)
    fluid = run_transfer(fluid=True)
    assert packet["received_n"] == fluid["received_n"] == N_BYTES
    assert fluid["server_conn"].fluid_bytes > 0.8 * N_BYTES
    assert fluid["segments"] < packet["segments"] / 3


def test_fluid_completion_time_close_to_packet_mode():
    """The rate integral ``wnd/srtt`` tracks the window-limited packet-mode
    throughput: completion times agree within modeling tolerance."""
    packet = run_transfer(fluid=False)
    fluid = run_transfer(fluid=True)
    assert abs(fluid["done_at"] - packet["done_at"]) < 0.2 * packet["done_at"]


def test_fluid_identical_across_engine_modes():
    saved = engine.DEFAULT_FAST_PATH
    runs = {}
    try:
        for fast in (False, True):
            engine.DEFAULT_FAST_PATH = fast
            out = run_transfer(fluid=True)
            runs[fast] = {
                "done_at": out["done_at"],
                "received_n": out["received_n"],
                "segments": out["segments"],
                "fluid_log": list(out["server_conn"].fluid_log),
                "fluid_bytes": out["server_conn"].fluid_bytes,
            }
    finally:
        engine.DEFAULT_FAST_PATH = saved
    assert runs[False] == runs[True]


def _open_competing_flow(sim, ctx):
    tcp_b = ctx["tcp_b"]
    tcp_a = ctx["tcp_a"]
    listener = tcp_b.listen(PORT + 1)

    def second_server():
        conn = yield listener.accept()
        while True:
            chunk = yield conn.rx.get()
            if not chunk:
                break

    def second_client():
        conn = yield sim.process(
            tcp_a.open_connection(ctx["node_b"].addresses()[0], PORT + 1)
        )
        conn.write(b"competing flow")
        # stays open: the stacks' connection counts remain changed

    sim.process(second_server())
    sim.process(second_client())


def test_competing_flow_exits_fluid():
    out = run_transfer(fluid=True, disturb=(0.6, _open_competing_flow))
    conn = out["server_conn"]
    assert out["received_n"] == N_BYTES  # correct through exit/re-enter
    reasons = [e[0] for e in conn.fluid_log if e[0].startswith("exit")]
    assert "exit:disturbed" in reasons


def test_flow_guard_off_ignores_competing_flow():
    out = run_transfer(
        fluid=True, flow_guard=False, disturb=(0.6, _open_competing_flow)
    )
    conn = out["server_conn"]
    assert out["received_n"] == N_BYTES
    reasons = [e[0] for e in conn.fluid_log if e[0].startswith("exit")]
    assert reasons == ["exit:complete"]
    assert conn.fluid_enters == 1


def _bump_epoch(sim, ctx):
    # What a rekey does to the dataplane: invalidates cached crypto state.
    ctx["node_b"].dataplane_epoch += 1


def test_rekey_epoch_bump_exits_fluid():
    out = run_transfer(fluid=True, disturb=(0.6, _bump_epoch))
    conn = out["server_conn"]
    assert out["received_n"] == N_BYTES
    reasons = [e[0] for e in conn.fluid_log if e[0].startswith("exit")]
    assert "exit:disturbed" in reasons


def test_fluid_charges_dataplane_taxers():
    """Every fast-forwarded byte is charged to both endpoints' taxers with
    the segment count the packet path would have used."""
    charged = {"out": 0, "in": 0, "out_segs": 0, "in_segs": 0}

    def arm_taxers(sim, ctx):
        def tax_b(addr, n, segs, direction):
            charged[direction] += n
            charged[direction + "_segs"] += segs

        ctx["node_b"].fluid_taxers.append(tax_b)
        ctx["node_a"].fluid_taxers.append(tax_b)

    out = run_transfer(fluid=True, disturb=(0.0, arm_taxers))
    conn = out["server_conn"]
    assert conn.fluid_bytes > 0
    assert charged["out"] == conn.fluid_bytes
    assert charged["in"] == conn.fluid_bytes
    assert charged["out_segs"] >= conn.fluid_bytes // 1448
