"""Address, prefix and packet-model tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addresses import (
    IPAddress,
    LSI_PREFIX,
    ORCHID_PREFIX,
    Prefix,
    TEREDO_PREFIX,
    ipv4,
    ipv6,
    is_hit,
    is_lsi,
    is_teredo,
    prefix,
)
from repro.net.packet import (
    ESPHeader,
    HIPHeader,
    ICMPHeader,
    IPHeader,
    Packet,
    TCPHeader,
    UDPHeader,
    VirtualPayload,
)


class TestAddresses:
    def test_ipv4_parse_format_roundtrip(self):
        for text in ("0.0.0.0", "10.0.0.1", "255.255.255.255", "192.0.2.33"):
            assert str(ipv4(text)) == text

    def test_ipv4_from_int(self):
        assert ipv4(0x0A000001) == ipv4("10.0.0.1")

    def test_ipv4_malformed(self):
        for bad in ("1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d"):
            with pytest.raises(ValueError):
                ipv4(bad)

    def test_ipv6_parse(self):
        assert ipv6("::") == IPAddress(6, 0)
        assert ipv6("::1") == IPAddress(6, 1)
        assert ipv6("2001:10::") == IPAddress(6, 0x20010010 << 96)
        assert ipv6("1:2:3:4:5:6:7:8").value == (
            (1 << 112) | (2 << 96) | (3 << 80) | (4 << 64)
            | (5 << 48) | (6 << 32) | (7 << 16) | 8
        )

    def test_ipv6_malformed(self):
        for bad in ("1:2:3", "::1::2", "1:2:3:4:5:6:7:8:9", "12345::"):
            with pytest.raises(ValueError):
                ipv6(bad)

    def test_out_of_range_values(self):
        with pytest.raises(ValueError):
            IPAddress(4, 1 << 32)
        with pytest.raises(ValueError):
            IPAddress(6, 1 << 128)
        with pytest.raises(ValueError):
            IPAddress(5, 0)

    @given(st.integers(0, 2**32 - 1))
    def test_ipv4_text_roundtrip(self, value):
        addr = IPAddress(4, value)
        assert ipv4(str(addr)) == addr

    def test_packed(self):
        assert ipv4("1.2.3.4").packed() == b"\x01\x02\x03\x04"
        assert len(ipv6("::1").packed()) == 16

    def test_ordering(self):
        assert ipv4("1.0.0.1") < ipv4("1.0.0.2")


class TestPrefix:
    def test_contains(self):
        p = prefix("10.0.0.0/8")
        assert p.contains(ipv4("10.255.1.2"))
        assert not p.contains(ipv4("11.0.0.0"))
        assert not p.contains(ipv6("::1"))

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            Prefix(ipv4("10.0.0.1"), 8)

    def test_length_bounds(self):
        with pytest.raises(ValueError):
            Prefix(ipv4("10.0.0.0"), 33)

    def test_zero_length_matches_all(self):
        assert prefix("0.0.0.0/0").contains(ipv4("200.1.2.3"))

    def test_special_ranges(self):
        assert is_hit(ipv6("2001:10::1"))
        assert is_hit(ipv6("2001:1f:ffff::"))  # still inside /28
        assert not is_hit(ipv6("2001:20::1"))
        assert not is_hit(ipv4("1.0.0.1"))
        assert is_lsi(ipv4("1.0.0.1"))
        assert not is_lsi(ipv4("2.0.0.1"))
        assert is_teredo(ipv6("2001:0:1234::1"))
        assert not is_teredo(ipv6("2001:10::1"))  # HITs are not Teredo

    def test_prefix_text_requires_length(self):
        with pytest.raises(ValueError):
            prefix("10.0.0.0")


class TestPacket:
    def _tcp_packet(self, payload=b"data"):
        return Packet(
            headers=(
                IPHeader(src=ipv4("10.0.0.1"), dst=ipv4("10.0.0.2"), proto="tcp"),
                TCPHeader(src_port=1000, dst_port=80),
            ),
            payload=payload,
        )

    def test_size_accounts_headers_and_payload(self):
        pkt = self._tcp_packet(b"x" * 100)
        assert pkt.size_bytes == 20 + 20 + 100

    def test_ipv6_header_is_40(self):
        pkt = Packet(
            headers=(IPHeader(src=ipv6("::1"), dst=ipv6("::2"), proto="tcp"),)
        )
        assert pkt.size_bytes == 40

    def test_family_mismatch_rejected(self):
        with pytest.raises(ValueError):
            IPHeader(src=ipv4("1.2.3.4"), dst=ipv6("::1"), proto="tcp")

    def test_virtual_payload_counts(self):
        pkt = self._tcp_packet(VirtualPayload(5000))
        assert pkt.size_bytes == 40 + 5000

    def test_virtual_payload_negative_rejected(self):
        with pytest.raises(ValueError):
            VirtualPayload(-1)

    def test_push_pop_roundtrip(self):
        pkt = self._tcp_packet()
        esp = ESPHeader(spi=1, seq=1)
        wrapped = pkt.pushed(esp)
        assert wrapped.size_bytes == pkt.size_bytes + esp.header_len
        header, inner = wrapped.popped()
        assert header is esp
        assert inner.headers == pkt.headers

    def test_pop_empty_raises(self):
        with pytest.raises(ValueError):
            Packet(headers=()).popped()

    def test_find(self):
        pkt = self._tcp_packet()
        assert isinstance(pkt.find(TCPHeader), TCPHeader)
        assert pkt.find(UDPHeader) is None

    def test_meta_preserved_across_push_pop(self):
        pkt = self._tcp_packet().with_meta(flow=7)
        wrapped = pkt.pushed(ESPHeader(spi=1, seq=1))
        _, inner = wrapped.popped()
        assert inner.meta["flow"] == 7

    def test_packet_as_payload(self):
        inner = self._tcp_packet(b"x" * 10)
        outer = Packet(
            headers=(UDPHeader(src_port=1, dst_port=2),), payload=inner
        )
        assert outer.size_bytes == 8 + inner.size_bytes

    def test_esp_header_len_tracks_fields(self):
        base = ESPHeader(spi=1, seq=1, iv_len=0, icv_len=0, pad_len=0)
        assert base.header_len == 10  # spi + seq + padlen byte + next header
        full = ESPHeader(spi=1, seq=1, iv_len=16, icv_len=12, pad_len=4)
        assert full.header_len == 10 + 16 + 12 + 4

    def test_hip_header_is_40(self):
        assert HIPHeader(packet_type="I1").header_len == 40

    def test_icmp_header(self):
        assert ICMPHeader(kind="echo-request", ident=1, seq=1).header_len == 8

    def test_packet_ids_unique(self):
        a, b = self._tcp_packet(), self._tcp_packet()
        assert a.packet_id != b.packet_id
