"""Additional SSL-VPN daemon coverage: failure paths and accounting."""

import random

import pytest

from repro.crypto.rsa import RsaKeyPair
from repro.net.addresses import IPAddress, ipv4
from repro.net.tcp import TcpStack
from repro.net.topology import lan_pair
from repro.tls.vpn import SslVpnDaemon, VPN_SUBNET, VpnError, VpnRecordHeader

A, B = ipv4("10.0.0.1"), ipv4("10.0.0.2")


@pytest.fixture(scope="module")
def keys():
    gen = random.Random(31)
    return RsaKeyPair.generate(512, gen), RsaKeyPair.generate(512, gen)


def vpn_addr(n: int) -> IPAddress:
    return IPAddress(4, VPN_SUBNET.network.value + n)


@pytest.fixture
def vpn_pair(sim, keys):
    key_a, key_b = keys
    a, b = lan_pair(sim, "a", "b")
    va = SslVpnDaemon(a, vpn_addr(10), key_a, rng=random.Random(1))
    vb = SslVpnDaemon(b, vpn_addr(11), key_b, rng=random.Random(2))
    va.add_peer(vpn_addr(11), B, key_b.public)
    vb.add_peer(vpn_addr(10), A, key_a.public)
    return sim, a, b, va, vb


class TestVpnDetails:
    def test_record_header_overhead(self):
        header = VpnRecordHeader(seq=1, pad_len=8)
        # 5 record + 16 IV + 20 MAC + 8 pad + 8 UDP.
        assert header.header_len == 57

    def test_wire_packets_are_vpn_protocol(self, vpn_pair):
        sim, a, b, va, vb = vpn_pair
        protos = []
        endpoint = a.interface("eth0")._endpoint
        original = endpoint.send

        def spy(packet):
            protos.append(packet.outer.proto)
            return original(packet)

        endpoint.send = spy
        ta, tb = TcpStack(a), TcpStack(b)

        def server():
            listener = tb.listen(80)
            conn = yield listener.accept()
            yield from conn.recv_bytes(3)

        def client():
            conn = yield sim.process(ta.open_connection(vpn_addr(11), 80))
            conn.write(b"abc")

        sim.process(server())
        sim.process(client())
        sim.run(until=30)
        assert set(protos) == {"sslvpn"}

    def test_wrong_server_key_rejected_by_client(self, sim, keys):
        """Client keyed to the wrong public key: server can't decrypt, the
        finished check never passes, the tunnel times out."""
        key_a, key_b = keys
        wrong = RsaKeyPair.generate(512, random.Random(99))
        a, b = lan_pair(sim, "a", "b")
        va = SslVpnDaemon(a, vpn_addr(10), key_a, rng=random.Random(1))
        vb = SslVpnDaemon(b, vpn_addr(11), key_b, rng=random.Random(2))
        va.add_peer(vpn_addr(11), B, wrong.public)  # wrong trust
        vb.add_peer(vpn_addr(10), A, key_a.public)

        def flow():
            with pytest.raises(VpnError):
                yield from va.connect(vpn_addr(11), timeout=10.0)
            return True

        proc = sim.process(flow())
        assert sim.run(until=proc) is True

    def test_tunnel_reused_across_connections(self, vpn_pair):
        sim, a, b, va, vb = vpn_pair
        ta, tb = TcpStack(a), TcpStack(b)
        done = []

        def server():
            listener = tb.listen(80)
            while True:
                conn = yield listener.accept()
                sim.process(serve_one(conn))

        def serve_one(conn):
            data = yield from conn.recv_bytes(2)
            done.append(bytes(data))

        def client():
            for i in range(3):
                conn = yield sim.process(ta.open_connection(vpn_addr(11), 80))
                conn.write(b"%02d" % i)
                conn.close()
                yield sim.timeout(0.2)

        sim.process(server())
        sim.process(client())
        sim.run(until=30)
        assert sorted(done) == [b"00", b"01", b"02"]
        assert va.meter.ops.get("vpn.asym.encrypt") == 1  # one handshake total

    def test_bidirectional_counters(self, vpn_pair):
        sim, a, b, va, vb = vpn_pair
        from repro.net.icmp import IcmpStack, ping

        icmp_a, _ = IcmpStack(a), IcmpStack(b)
        proc = sim.process(ping(icmp_a, vpn_addr(11), count=4, timeout=10.0))
        sim.run(until=proc)
        assert va.packets_sent >= 4
        assert va.packets_received >= 4
        assert vb.packets_sent >= 4
        assert vb.packets_received >= 4

    def test_queue_limit_bounds_pending_packets(self, sim, keys):
        key_a, key_b = keys
        a, b = lan_pair(sim, "a", "b")
        va = SslVpnDaemon(a, vpn_addr(10), key_a, rng=random.Random(1),
                          queue_limit=4)
        # Peer never configured: handshake can't start, packets queue.
        from repro.net.packet import Packet, UDPHeader

        for i in range(10):
            a.send_ip(vpn_addr(11), "udp",
                      Packet(headers=(UDPHeader(src_port=1, dst_port=2),)))
        sim.run(until=1)
        tunnel = va.tunnels.get(vpn_addr(11))
        assert tunnel is not None
        assert len(tunnel.queued) <= 4
