"""VM migration over HIP-secured hypervisor channels + mobility survival."""

import random

import pytest

from repro.cloud.datacenter import Datacenter, DatacenterParams
from repro.cloud.migration import MigrationReport, migrate_vm
from repro.cloud.tenant import Tenant
from repro.cloud.vm import INSTANCE_TYPES, VirtualMachine
from repro.hip.daemon import HipConfig, HipDaemon
from repro.hip.identity import HostIdentity
from repro.net.icmp import IcmpStack, ping
from repro.net.tcp import TcpStack
from repro.sim import Simulator


@pytest.fixture
def migration_net(sim, session_identities):
    """Two-host datacenter with HIP on both hypervisors and one guest."""
    dc = Datacenter(sim, "dc", DatacenterParams(n_racks=1, hosts_per_rack=3))
    src, dst, other = dc.hosts[0], dc.hosts[1], dc.hosts[2]
    tenant = Tenant("t")
    vm = VirtualMachine(sim, "guest", INSTANCE_TYPES["t1.micro"], tenant)
    src.attach_vm(vm)
    # HIP daemons on the hypervisors (deployment scenario II).
    cfg = HipConfig(real_crypto=False)
    d_src = HipDaemon(src, session_identities["a"], rng=random.Random(1), config=cfg)
    d_dst = HipDaemon(dst, session_identities["b"], rng=random.Random(2), config=cfg)
    src_addr = src.interfaces[0].addresses or None
    d_src.add_peer(d_dst.hit, [dst.addresses(4)[0]])
    d_dst.add_peer(d_src.hit, [src.addresses(4)[0]])
    tcp_src, tcp_dst = TcpStack(src), TcpStack(dst)
    return sim, dc, src, dst, other, vm, d_src, d_dst, tcp_src, tcp_dst


class TestMigration:
    def test_secured_migration_completes(self, migration_net):
        sim, dc, src, dst, other, vm, d_src, d_dst, tcp_src, tcp_dst = migration_net
        proc = sim.process(
            migrate_vm(vm, dst, tcp_src, tcp_dst, secured=True)
        )
        report: MigrationReport = sim.run(until=proc)
        assert vm.host is dst
        assert vm.state == "running"
        image = vm.instance_type.memory_mb * 1024 * 1024
        assert report.bytes_transferred == pytest.approx(image * 1.12, rel=0.01)
        assert report.precopy_seconds > 0
        assert report.downtime_seconds < report.precopy_seconds
        # The transfer really crossed the hypervisors' ESP tunnel.
        assert d_src.data_packets_sent > 100

    def test_unsecured_migration(self, migration_net):
        sim, dc, src, dst, other, vm, d_src, d_dst, tcp_src, tcp_dst = migration_net
        proc = sim.process(
            migrate_vm(vm, dst, tcp_src, tcp_dst, secured=False)
        )
        report = sim.run(until=proc)
        assert report.secured is False
        assert vm.host is dst
        # Plain transfer: the hypervisor HIP daemons saw no data traffic.
        assert d_src.data_packets_sent == 0

    def test_migration_to_same_host_rejected(self, migration_net):
        sim, dc, src, dst, other, vm, d_src, d_dst, tcp_src, tcp_dst = migration_net

        def flow():
            with pytest.raises(ValueError):
                yield from migrate_vm(vm, src, tcp_src, tcp_src, secured=False)
            return True

        proc = sim.process(flow())
        assert sim.run(until=proc) is True

    def test_secured_needs_hip_on_destination(self, sim, session_identities):
        dc = Datacenter(sim, "dc", DatacenterParams(n_racks=1, hosts_per_rack=2))
        src, dst = dc.hosts
        vm = VirtualMachine(sim, "g", INSTANCE_TYPES["t1.micro"], Tenant("t"))
        src.attach_vm(vm)
        tcp_src, tcp_dst = TcpStack(src), TcpStack(dst)

        def flow():
            with pytest.raises(RuntimeError, match="HIP daemons"):
                yield from migrate_vm(vm, dst, tcp_src, tcp_dst, secured=True)
            return True

        proc = sim.process(flow())
        assert sim.run(until=proc) is True

    def test_guest_connections_survive_via_hip_mobility(self, migration_net,
                                                        session_identities):
        """The paper's §IV-C: migrated VM keeps its HIP associations alive."""
        sim, dc, src, dst, other, vm, d_src, d_dst, tcp_src, tcp_dst = migration_net
        # Guest and a peer VM both run HIP.
        peer = VirtualMachine(sim, "peer", INSTANCE_TYPES["t1.micro"], Tenant("t"))
        other.attach_vm(peer)
        cfg = HipConfig(real_crypto=False)
        d_guest = HipDaemon(vm, session_identities["c"], rng=random.Random(7),
                            config=cfg)
        d_peer = HipDaemon(peer, session_identities["ecdsa"], rng=random.Random(8),
                           config=cfg)
        d_guest.add_peer(d_peer.hit, [peer.primary_address])
        d_peer.add_peer(d_guest.hit, [vm.primary_address])

        icmp_peer, _ = IcmpStack(peer), IcmpStack(vm)

        def flow():
            # Establish an association guest <-> peer before migration.
            yield from d_guest.associate(d_peer.hit)
            before = yield sim.process(
                ping(icmp_peer, d_guest.hit, count=2, interval=0.02)
            )
            report = yield from migrate_vm(
                vm, dst, tcp_src, tcp_dst, vm_daemon=d_guest, secured=True,
            )
            # Give the UPDATE exchange a moment to verify the new locator.
            yield sim.timeout(2.0)
            after = yield sim.process(
                ping(icmp_peer, d_guest.hit, count=2, interval=0.02)
            )
            return before, after, report

        proc = sim.process(flow())
        before, after, report = sim.run(until=proc)
        assert all(r is not None for r in before)
        assert all(r is not None for r in after), "association broke across migration"
        assert d_peer.assocs[d_guest.hit].peer_locator == report.new_address
