"""Congestion scenario matrix: seeded, deterministic, metrics-emitting."""

import json
import math

import pytest

from repro.scenarios.congestion import (
    jain_index,
    run_bufferbloat,
    run_fairness,
    run_loss_sweep,
    run_lossy_link,
    run_matrix,
)

pytestmark = pytest.mark.smoke


class TestJainIndex:
    def test_perfect_fairness(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_one_flow_hogs(self):
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_degenerate_inputs(self):
        assert math.isnan(jain_index([]))
        assert math.isnan(jain_index([0.0, 0.0]))


class TestLossyLink:
    def test_loss_degrades_goodput_but_transfer_completes(self):
        clean = run_lossy_link(seed=7, loss_rate=0.0, transfer_bytes=300_000)
        lossy = run_lossy_link(seed=7, loss_rate=0.02, transfer_bytes=300_000)
        assert clean["goodput_mbps"] > lossy["goodput_mbps"]
        assert clean["segments_retransmitted"] == 0
        assert lossy["segments_retransmitted"] > 0
        assert lossy["packets_lost"] > 0

    def test_seeded_and_deterministic(self):
        one = run_lossy_link(seed=9, loss_rate=0.02, transfer_bytes=200_000)
        two = run_lossy_link(seed=9, loss_rate=0.02, transfer_bytes=200_000)
        assert one == two


class TestBufferbloat:
    def test_ecn_tames_rtt_inflation(self):
        result = run_bufferbloat(load_s=1.0, probe_count=5)
        # A deep drop-tail queue inflates RTT by an order of magnitude; the
        # same queue with RED-style ECN marking keeps it in single digits.
        assert result["inflation_fifo"] > 5.0
        assert result["inflation_ecn"] < result["inflation_fifo"] / 2
        assert result["ecn"]["ecn_reductions"] > 0
        assert result["fifo"]["ecn_reductions"] == 0


class TestFairness:
    def test_competing_flows_share_bottleneck(self):
        result = run_fairness(n_flows=3, duration=2.0, warmup=0.5)
        assert len(result["per_flow_mbps"]) == 3
        assert 0.0 < result["jain_index"] <= 1.0
        # NewReno flows over one FIFO bottleneck converge near-fair.
        assert result["jain_index"] > 0.8
        # The bottleneck is saturated (20 Mbit/s link, allow protocol overhead).
        assert result["aggregate_mbps"] > 0.7 * result["bandwidth_mbps"]


class TestLossSweep:
    def test_all_modes_complete_and_loss_hurts(self):
        result = run_loss_sweep(
            seed=5, loss_rates=(0.0, 0.03), transfer_bytes=200_000,
        )
        points = {(p["mode"], p["loss_rate"]): p["goodput_mbps"]
                  for p in result["points"]}
        assert len(points) == 6
        for mode in ("plain", "ssl", "hip"):
            assert points[(mode, 0.0)] > 0
            assert points[(mode, 0.03)] > 0
            assert points[(mode, 0.03)] < points[(mode, 0.0)]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown security mode"):
            run_loss_sweep(modes=("carrier-pigeon",), loss_rates=(0.0,))


class TestMatrix:
    def test_smoke_matrix_writes_metrics_reports(self, tmp_path):
        summary = run_matrix(tmp_path, smoke=True, seed=11)
        assert set(summary["scenarios"]) == {
            "lossy_link", "bufferbloat", "fairness", "loss_sweep",
        }
        for name, result in summary["scenarios"].items():
            report_path = tmp_path / name / "metrics.json"
            assert report_path.is_file()
            payload = json.loads(report_path.read_text())
            assert payload["schema"] == "repro-metrics/1"
            assert payload["extra"] == result
