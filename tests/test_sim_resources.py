"""Tests for simulation queues, resources, and RNG streams."""

import pytest

from repro.sim import Queue, Resource, RngStreams, Simulator
from repro.sim.resources import QueueFullError


class TestQueue:
    def test_put_then_get(self, sim, drive):
        q = Queue(sim)
        q.try_put("x")

        def consumer():
            item = yield q.get()
            return item

        assert drive(sim, consumer()) == "x"

    def test_get_blocks_until_put(self, sim, drive):
        q = Queue(sim)
        got = []

        def consumer():
            item = yield q.get()
            got.append((sim.now, item))

        def producer():
            yield sim.timeout(2.0)
            q.try_put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(2.0, "late")]

    def test_fifo_order_items(self, sim, drive):
        q = Queue(sim)
        for i in range(5):
            q.try_put(i)

        def consumer():
            items = []
            for _ in range(5):
                items.append((yield q.get()))
            return items

        assert drive(sim, consumer()) == [0, 1, 2, 3, 4]

    def test_fifo_order_waiters(self, sim):
        q = Queue(sim)
        got = []

        def consumer(name):
            item = yield q.get()
            got.append((name, item))

        sim.process(consumer("first"))
        sim.process(consumer("second"))

        def producer():
            yield sim.timeout(1)
            q.try_put("a")
            q.try_put("b")

        sim.process(producer())
        sim.run()
        assert got == [("first", "a"), ("second", "b")]

    def test_bounded_drop_tail(self, sim):
        q = Queue(sim, capacity=2)
        assert q.try_put(1) and q.try_put(2)
        assert not q.try_put(3)
        assert q.dropped == 1
        assert len(q) == 2

    def test_put_event_fails_when_full(self, sim):
        q = Queue(sim, capacity=1)
        q.try_put(1)

        def proc():
            with pytest.raises(QueueFullError):
                yield q.put(2)
            return True

        p = sim.process(proc())
        assert sim.run(until=p) is True

    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Queue(sim, capacity=0)

    def test_try_get(self, sim):
        q = Queue(sim)
        ok, item = q.try_get()
        assert not ok and item is None
        q.try_put("x")
        ok, item = q.try_get()
        assert ok and item == "x"

    def test_put_direct_handoff_bypasses_capacity(self, sim):
        """A waiting getter receives even when the queue is 'full'."""
        q = Queue(sim, capacity=1)
        got = []

        def consumer():
            got.append((yield q.get()))

        sim.process(consumer())
        sim.run(until=0)
        q.try_put("a")  # hands directly to the waiting consumer
        assert q.try_put("b")  # fills the single slot
        assert not q.try_put("c")
        sim.run()
        assert got == ["a"]


class TestResource:
    def test_serializes_beyond_capacity(self, sim):
        pool = Resource(sim, capacity=2)
        spans = {}

        def worker(name):
            req = pool.request()
            yield req
            start = sim.now
            yield sim.timeout(1.0)
            pool.release(req)
            spans[name] = (start, sim.now)

        for name in ("a", "b", "c"):
            sim.process(worker(name))
        sim.run()
        assert spans["a"] == (0.0, 1.0)
        assert spans["b"] == (0.0, 1.0)
        assert spans["c"] == (1.0, 2.0)

    def test_in_use_and_queued_counters(self, sim):
        pool = Resource(sim, capacity=1)

        def holder():
            req = pool.request()
            yield req
            yield sim.timeout(5)
            pool.release(req)

        def waiter():
            req = pool.request()
            yield req
            pool.release(req)

        sim.process(holder())
        sim.process(waiter())
        sim.run(until=1)
        assert pool.in_use == 1
        assert pool.queued == 1
        sim.run()
        assert pool.in_use == 0

    def test_release_without_request_raises(self, sim):
        pool = Resource(sim, capacity=1)
        with pytest.raises(RuntimeError):
            pool.release(sim.event())

    def test_cancel_queued_request(self, sim):
        pool = Resource(sim, capacity=1)
        first = pool.request()
        second = pool.request()
        assert pool.cancel(second) is True
        assert pool.cancel(second) is False
        pool.release(first)
        assert pool.in_use == 0

    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)


class TestRngStreams:
    def test_same_name_same_stream(self):
        rngs = RngStreams(1)
        assert rngs.stream("x") is rngs.stream("x")

    def test_streams_independent_of_creation_order(self):
        a = RngStreams(7)
        b = RngStreams(7)
        a.stream("first").random()  # consume from an unrelated stream
        assert a.stream("second").random() == b.stream("second").random()

    def test_different_seeds_differ(self):
        xs = [RngStreams(s).stream("x").random() for s in range(5)]
        assert len(set(xs)) == 5

    def test_spawn_derives_child(self):
        parent = RngStreams(3)
        child1 = parent.spawn("sub")
        child2 = RngStreams(3).spawn("sub")
        assert child1.stream("y").random() == child2.stream("y").random()
        assert child1.stream("y") is not parent.stream("y")
