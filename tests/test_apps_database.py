"""Database server and client tests: query model, cache, invalidation."""

import random

import pytest

from repro.apps.database import (
    DbClient,
    DbServer,
    Query,
    QueryError,
    TableSpec,
    rubis_tables,
)
from repro.net.addresses import ipv4
from repro.net.tcp import TcpStack
from repro.net.topology import lan_pair

B = ipv4("10.0.0.2")
DB_PORT = 3306


@pytest.fixture
def db_net(sim, rng):
    a, b = lan_pair(sim, "web", "db")
    ta, tb = TcpStack(a), TcpStack(b)
    server = DbServer(
        b, tb, DB_PORT, rubis_tables(), cache_enabled=True,
        rng=random.Random(3), stochastic=False,
    )
    client = DbClient(a, ta, B, DB_PORT, rng=random.Random(4))
    return sim, server, client


class TestQueryModel:
    def test_wire_roundtrip(self):
        q = Query(kind="scan", table="items", key="42", rows=25)
        assert Query.from_wire(q.to_wire()) == q

    def test_malformed_wire_rejected(self):
        for bad in (b"", b"pk items", b"drop items 1 1", b"pk items x notanint"):
            with pytest.raises(QueryError):
                Query.from_wire(bad)

    def test_rubis_tables_complete(self):
        names = {t.name for t in rubis_tables()}
        assert names == {"users", "items", "bids", "comments", "categories"}


class TestDbService:
    def test_pk_lookup_roundtrip(self, db_net, drive):
        sim, server, client = db_net

        def flow():
            rows, nbytes = yield from client.query(
                Query(kind="pk", table="items", key="7")
            )
            return rows, nbytes

        rows, nbytes = drive(sim, flow())
        assert rows == 1
        assert nbytes == 420  # items row_bytes

    def test_scan_returns_requested_rows(self, db_net, drive):
        sim, server, client = db_net

        def flow():
            return (yield from client.query(
                Query(kind="scan", table="bids", key="9", rows=20)
            ))

        rows, nbytes = drive(sim, flow())
        assert rows == 20 and nbytes == 20 * 120

    def test_unknown_table_rejected(self, db_net, drive):
        sim, server, client = db_net

        def flow():
            with pytest.raises(QueryError):
                yield from client.query(Query(kind="pk", table="ghosts", key="1"))
            return True

        assert drive(sim, flow()) is True
        assert server.stats.errors == 1

    def test_cache_hit_counted_and_faster(self, db_net):
        sim, server, client = db_net
        times = []

        def flow():
            for _ in range(2):
                t0 = sim.now
                yield from client.query(Query(kind="scan", table="items",
                                              key="55", rows=25))
                times.append(sim.now - t0)

        proc = sim.process(flow())
        sim.run(until=proc)
        assert server.stats.cache_hits == 1
        assert server.stats.cache_misses == 1
        assert times[1] < times[0] * 0.75  # hit clearly cheaper

    def test_write_invalidates_table_cache(self, db_net):
        sim, server, client = db_net

        def flow():
            q = Query(kind="scan", table="items", key="55", rows=25)
            yield from client.query(q)  # miss, cached
            yield from client.query(Query(kind="write", table="items", key="55"))
            yield from client.query(q)  # must miss again

        proc = sim.process(flow())
        sim.run(until=proc)
        assert server.stats.cache_hits == 0
        assert server.stats.cache_misses == 2
        assert server.stats.writes == 1

    def test_write_does_not_invalidate_other_tables(self, db_net):
        sim, server, client = db_net

        def flow():
            q = Query(kind="scan", table="users", key="1", rows=5)
            yield from client.query(q)
            yield from client.query(Query(kind="write", table="items", key="9"))
            yield from client.query(q)

        proc = sim.process(flow())
        sim.run(until=proc)
        assert server.stats.cache_hits == 1

    def test_cache_disabled_never_hits(self, sim):
        a, b = lan_pair(sim, "web", "db")
        ta, tb = TcpStack(a), TcpStack(b)
        server = DbServer(b, tb, DB_PORT, rubis_tables(), cache_enabled=False,
                          rng=random.Random(3), stochastic=False)
        client = DbClient(a, ta, B, DB_PORT)

        def flow():
            q = Query(kind="scan", table="items", key="5", rows=10)
            yield from client.query(q)
            yield from client.query(q)

        proc = sim.process(flow())
        sim.run(until=proc)
        assert server.stats.cache_hits == 0
        assert server.stats.cache_misses == 2

    def test_full_scan_costs_more_than_pk(self, db_net):
        sim, server, client = db_net
        times = {}

        def flow():
            t0 = sim.now
            yield from client.query(Query(kind="pk", table="bids", key="1"))
            times["pk"] = sim.now - t0
            t0 = sim.now
            yield from client.query(Query(kind="full", table="bids", key="*"))
            times["full"] = sim.now - t0

        proc = sim.process(flow())
        sim.run(until=proc)
        assert times["full"] > times["pk"] * 10

    def test_stochastic_requires_rng(self, sim):
        a, b = lan_pair(sim, "web", "db")
        tb = TcpStack(b)
        with pytest.raises(ValueError):
            DbServer(b, tb, DB_PORT, rubis_tables(), stochastic=True, rng=None)

    def test_concurrent_clients_served(self, sim):
        a, b = lan_pair(sim, "web", "db")
        ta, tb = TcpStack(a), TcpStack(b)
        server = DbServer(b, tb, DB_PORT, rubis_tables(), rng=random.Random(3))
        results = []

        def one(i):
            client = DbClient(a, ta, B, DB_PORT)
            rows, _ = yield from client.query(
                Query(kind="pk", table="users", key=str(i))
            )
            results.append(rows)
            client.close()

        for i in range(8):
            sim.process(one(i))
        sim.run(until=30)
        assert results == [1] * 8
        assert server.stats.queries == 8

    def test_tls_protected_db_connection(self, sim):
        from repro.crypto.rsa import RsaKeyPair
        from repro.tls.connection import TlsServerContext

        a, b = lan_pair(sim, "web", "db")
        ta, tb = TcpStack(a), TcpStack(b)
        ctx = TlsServerContext(keypair=RsaKeyPair.generate(512, random.Random(5)))
        server = DbServer(b, tb, DB_PORT, rubis_tables(), tls_ctx=ctx,
                          rng=random.Random(3))
        client = DbClient(a, ta, B, DB_PORT, rng=random.Random(6), use_tls=True)
        out = {}

        def flow():
            rows, nbytes = yield from client.query(
                Query(kind="pk", table="items", key="3")
            )
            out["rows"] = rows

        proc = sim.process(flow())
        sim.run(until=proc)
        assert out["rows"] == 1
        assert server.stats.queries == 1
