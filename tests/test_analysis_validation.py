"""Untrusted wire-input validation tests (VAL001/VAL002/VAL003).

The fixtures are the shapes this pass caught (and we then fixed) in the
real parsers — dns, teredo, tls — plus clean twins proving each guard
idiom actually discharges the obligation: dominating length checks,
exact-length equality, pending slice-length discharge, and validated
offsets surviving ``off += k`` advancement.
"""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_source

DNS_PATH = "src/repro/net/dns.py"


def findings(source: str, rule: str, path: str = DNS_PATH) -> list:
    return [
        f
        for f in analyze_source(textwrap.dedent(source), path, rules={rule})
        if not f.suppressed and f.rule == rule
    ]


# ------------------------------------------------------------------ VAL001 --


def test_val001_wire_count_bounds_allocation():
    src = """
        import struct

        def decode(data):
            (n,) = struct.unpack_from(">H", data, 0)
            return bytearray(n)
    """
    [finding] = findings(src, "VAL001")
    assert "bytearray" in finding.message or "alloc" in finding.message.lower()


def test_val001_negative_range_guard_discharges():
    src = """
        import struct

        def decode(data):
            (n,) = struct.unpack_from(">H", data, 0)
            if n > 64:
                raise ValueError("bad count")
            return bytearray(n)
    """
    assert not findings(src, "VAL001")


def test_val001_wire_count_bounds_loop():
    src = """
        import struct

        def decode(data):
            (n,) = struct.unpack_from(">B", data, 0)
            out = []
            for i in range(n):
                out.append(i)
            return out
    """
    assert findings(src, "VAL001")


def test_val001_negative_loop_guarded_against_buffer():
    """The rendezvous-list shape from the dns fix: prove the loop's total
    consumption fits the buffer before iterating."""
    src = """
        import struct

        def decode(data):
            (n,) = struct.unpack_from(">B", data, 0)
            if 1 + 2 * n > len(data):
                raise ValueError("short")
            out = []
            for i in range(n):
                out.append(i)
            return out
    """
    assert not findings(src, "VAL001")


def test_val001_wire_int_indexes_buffer():
    src = """
        import struct

        def decode(data):
            if len(data) < 3:
                raise ValueError("short")
            (n,) = struct.unpack_from(">H", data, 0)
            return data[n]
    """
    assert findings(src, "VAL001")


def test_val001_negative_bytes_of_buffer_is_a_copy():
    """``bytes(buf)`` copies; only ``bytes(n)`` allocates n zeros."""
    src = """
        def decode(data):
            if len(data) < 4:
                raise ValueError("short")
            return bytes(data)
    """
    assert not findings(src, "VAL001")


# ------------------------------------------------------------------ VAL002 --


def test_val002_unproven_slice_silently_truncates():
    src = """
        def decode(data):
            head = data[:5]
            return head
    """
    [finding] = findings(src, "VAL002")
    assert "trunc" in finding.message.lower() or "slic" in finding.message.lower()


def test_val002_negative_dominating_length_check():
    src = """
        def decode(data):
            if len(data) < 5:
                raise ValueError("short")
            head = data[:5]
            return head
    """
    assert not findings(src, "VAL002")


def test_val002_negative_pending_length_discharge():
    """``value = data[o:o+n]`` followed by ``len(value)`` verification is
    the guard idiom itself — slicing first, then checking the result."""
    src = """
        def decode(data):
            value = data[0:7]
            if len(value) != 7:
                raise ValueError("short")
            return value
    """
    assert not findings(src, "VAL002")


def test_val002_negative_exact_length_equality():
    """The teredo parse_ra shape: an exact-length gate proves every
    in-bounds slice at once."""
    src = """
        import struct

        def parse(data):
            if len(data) != 7:
                raise ValueError("bad length")
            (port,) = struct.unpack(">H", bytes(data[5:7]))
            return port
    """
    assert not findings(src, "VAL002")


def test_val002_yield_recvfrom_marks_wire_buffer():
    """``data, src = yield sock.recvfrom()`` must mark ``data`` as wire
    input — the miss that hid the teredo ``_await_ra`` bug."""
    src = """
        def _serve(sock):
            while True:
                data, src = yield sock.recvfrom()
                head = data[:5]
    """
    assert findings(src, "VAL002")


# ------------------------------------------------------------------ VAL003 --


def test_val003_unguarded_unpack_escapes():
    src = """
        import struct

        def decode(data):
            (n,) = struct.unpack(">H", data)
            return n
    """
    [finding] = findings(src, "VAL003")
    assert "struct.error" in finding.message
    assert "domain parse error" in finding.message


def test_val003_negative_wrapped_in_domain_error():
    src = """
        import struct

        def decode(data):
            try:
                (n,) = struct.unpack(">H", data)
            except struct.error as exc:
                raise ValueError("short") from exc
            return n
    """
    assert not findings(src, "VAL003")


def test_val003_negative_length_guard_proves_unpack():
    src = """
        import struct

        def decode(data):
            if len(data) < 2:
                raise ValueError("short")
            (n,) = struct.unpack_from(">H", data, 0)
            return n
    """
    assert not findings(src, "VAL003")


def test_val003_escape_propagates_to_caller():
    src = """
        import struct

        def _inner(data):
            (n,) = struct.unpack(">H", data)
            return n

        def decode(data):
            return _inner(data)
    """
    assert len(findings(src, "VAL003")) == 2


def test_val003_validated_offset_survives_augassign():
    """The dns decode_response shape: a guard covering the advanced offset
    must keep the offset validated through ``off += 16``."""
    src = """
        import struct

        def decode(data):
            off = 1
            if off + 18 > len(data):
                raise ValueError("short")
            off += 16
            (n,) = struct.unpack_from(">H", data, off)
            return n
    """
    assert not findings(src, "VAL003")


def test_val003_unproven_advanced_offset_still_flagged():
    src = """
        import struct

        def decode(data):
            off = 1
            off += 16
            (n,) = struct.unpack_from(">H", data, off)
            return n
    """
    assert findings(src, "VAL003")


# ------------------------------------------------------------------- scope --


def test_val_rules_only_fire_in_scoped_modules():
    src = """
        import struct

        def decode(data):
            (n,) = struct.unpack(">H", data)
            return data[:5], bytearray(n)
    """
    for rule in ("VAL001", "VAL002", "VAL003"):
        assert not findings(src, rule, path="src/repro/sim/engine.py")
