"""NAT and Teredo tunneling tests."""

import pytest

from repro.net.addresses import ipv4, prefix
from repro.net.icmp import IcmpStack, ping
from repro.net.nat import NatBox
from repro.net.node import Node
from repro.net.tcp import TcpStack
from repro.net.teredo import (
    TeredoClient,
    TeredoServer,
    make_teredo_address,
    parse_teredo_address,
)
from repro.net.topology import wire
from repro.net.udp import UdpStack
from repro.sim import Simulator


@pytest.fixture
def natted_net(sim):
    """client_a behind NAT; server and client_b public.

    Returns dict of nodes; all given UDP stacks.
    """
    client_a = Node(sim, "clientA")
    nat = NatBox(sim, "nat", external_addr=ipv4("198.51.100.1"))
    core = Node(sim, "core", forwarding=True)
    server = Node(sim, "server")
    client_b = Node(sim, "clientB")

    ia, nat_in = wire(sim, client_a, nat, addr_a=ipv4("192.168.0.2"), delay_s=1e-3)[:2]
    nat_in.add_address(ipv4("192.168.0.1"))
    nat_out, core_1 = wire(sim, nat, core, delay_s=2e-3)[:2]
    core_2, srv_if = wire(sim, core, server, addr_b=ipv4("203.0.113.1"), delay_s=2e-3)[:2]
    core_3, b_if = wire(sim, core, client_b, addr_b=ipv4("203.0.113.2"), delay_s=2e-3)[:2]

    nat.set_outside(nat_out)
    nat.mark_inside(nat_in)

    client_a.routes.add(prefix("0.0.0.0/0"), ia)
    nat.routes.add(prefix("192.168.0.0/24"), nat_in)
    nat.routes.add(prefix("0.0.0.0/0"), nat_out)
    core.routes.add(prefix("198.51.100.0/24"), core_1)
    core.routes.add(prefix("203.0.113.1/32"), core_2)
    core.routes.add(prefix("203.0.113.2/32"), core_3)
    server.routes.add(prefix("0.0.0.0/0"), srv_if)
    client_b.routes.add(prefix("0.0.0.0/0"), b_if)

    return {
        "a": client_a, "nat": nat, "server": server, "b": client_b,
        "udp_a": UdpStack(client_a), "udp_srv": UdpStack(server),
        "udp_b": UdpStack(client_b),
    }


class TestNat:
    def test_outbound_rewritten_and_reply_translated(self, sim, natted_net, drive):
        net = natted_net
        echo_port = 7

        def server_proc():
            sock = net["udp_srv"].bind(echo_port)
            data, (src, port) = yield sock.recvfrom()
            # The server must see the NAT's external address, not 192.168/16.
            assert src == ipv4("198.51.100.1")
            sock.sendto(b"reply:" + bytes(data), src, port)

        def client_proc():
            sock = net["udp_a"].bind(0)
            sock.sendto(b"hi", ipv4("203.0.113.1"), echo_port)
            data, _ = yield sock.recvfrom()
            return bytes(data)

        sim.process(server_proc())
        proc = sim.process(client_proc())
        assert sim.run(until=proc) == b"reply:hi"

    def test_unsolicited_inbound_dropped(self, sim, natted_net):
        net = natted_net
        sock = net["udp_srv"].bind(0)
        sock.sendto(b"attack", ipv4("198.51.100.1"), 1024)
        sim.run(until=1)
        assert net["nat"].dropped_unsolicited == 1

    def test_mapping_is_stable(self, sim, natted_net):
        """Endpoint-independent: same internal socket -> same external port."""
        net = natted_net
        seen_ports = []

        def server_proc():
            sock = net["udp_srv"].bind(7)
            for _ in range(2):
                _, (_, port) = yield sock.recvfrom()
                seen_ports.append(port)

        def client_proc():
            sock = net["udp_a"].bind(0)
            sock.sendto(b"1", ipv4("203.0.113.1"), 7)
            yield sim.timeout(0.1)
            sock.sendto(b"2", ipv4("203.0.113.1"), 7)

        sim.process(server_proc())
        sim.process(client_proc())
        sim.run(until=2)
        assert len(seen_ports) == 2 and seen_ports[0] == seen_ports[1]

    def test_tcp_through_nat(self, sim, natted_net):
        net = natted_net
        ta = TcpStack(net["a"])
        ts = TcpStack(net["server"])
        got = {}

        def server_proc():
            listener = ts.listen(80)
            conn = yield listener.accept()
            data = yield from conn.recv_bytes(5)
            got["data"] = data
            conn.write(b"OK")

        def client_proc():
            conn = yield sim.process(ta.open_connection(ipv4("203.0.113.1"), 80))
            conn.write(b"hello")
            got["reply"] = yield from conn.recv_bytes(2)

        sim.process(server_proc())
        sim.process(client_proc())
        sim.run(until=10)
        assert got == {"data": b"hello", "reply": b"OK"}


class TestTeredoAddress:
    def test_derive_and_parse_roundtrip(self):
        addr = make_teredo_address(ipv4("203.0.113.1"), ipv4("198.51.100.1"), 4096)
        server, mapped, port = parse_teredo_address(addr)
        assert server == ipv4("203.0.113.1")
        assert mapped == ipv4("198.51.100.1")
        assert port == 4096

    def test_prefix_is_teredo(self):
        from repro.net.addresses import is_teredo

        addr = make_teredo_address(ipv4("1.2.3.4"), ipv4("5.6.7.8"), 1)
        assert is_teredo(addr)

    def test_parse_rejects_non_teredo(self):
        from repro.net.addresses import ipv6

        with pytest.raises(ValueError):
            parse_teredo_address(ipv6("2001:10::1"))

    def test_requires_ipv4_inputs(self):
        from repro.net.addresses import ipv6

        with pytest.raises(ValueError):
            make_teredo_address(ipv6("::1"), ipv4("1.2.3.4"), 1)


class TestTeredoService:
    def test_qualification_embeds_nat_mapping(self, sim, natted_net, drive):
        net = natted_net
        TeredoServer(net["server"], net["udp_srv"])
        client = TeredoClient(net["a"], net["udp_a"], ipv4("203.0.113.1"))
        addr = drive(sim, client.qualify())
        server, mapped, _port = parse_teredo_address(addr)
        assert server == ipv4("203.0.113.1")
        assert mapped == ipv4("198.51.100.1")  # the NAT's external address

    def test_qualification_timeout_without_server(self, sim, natted_net):
        net = natted_net
        client = TeredoClient(net["a"], net["udp_a"], ipv4("203.0.113.9"))

        def flow():
            with pytest.raises(TimeoutError):
                yield sim.process(client.qualify(timeout=0.5))
            return True

        proc = sim.process(flow())
        assert sim.run(until=proc) is True

    def test_ping_natted_to_public_over_teredo(self, sim, natted_net, drive):
        net = natted_net
        TeredoServer(net["server"], net["udp_srv"])
        ta = TeredoClient(net["a"], net["udp_a"], ipv4("203.0.113.1"))
        tb = TeredoClient(net["b"], net["udp_b"], ipv4("203.0.113.1"))
        icmp_a, _icmp_b = IcmpStack(net["a"]), IcmpStack(net["b"])

        def flow():
            yield sim.process(ta.qualify())
            addr_b = yield sim.process(tb.qualify())
            rtts = yield sim.process(ping(icmp_a, addr_b, count=3, interval=0.05))
            return rtts

        rtts = drive(sim, flow())
        assert all(r is not None for r in rtts)
        assert ta.packets_encapsulated >= 3
        assert tb.packets_decapsulated >= 3

    def test_teredo_rtt_exceeds_native(self, sim, natted_net, drive):
        """Userspace encap/decap cost makes Teredo RTT visibly worse."""
        net = natted_net
        TeredoServer(net["server"], net["udp_srv"])
        ta = TeredoClient(net["a"], net["udp_a"], ipv4("203.0.113.1"))
        tb = TeredoClient(net["b"], net["udp_b"], ipv4("203.0.113.1"))
        icmp_a = IcmpStack(net["a"])
        IcmpStack(net["b"])

        def flow():
            yield sim.process(ta.qualify())
            addr_b = yield sim.process(tb.qualify())
            native = yield sim.process(ping(icmp_a, ipv4("203.0.113.2"), count=3))
            teredo = yield sim.process(ping(icmp_a, addr_b, count=3))
            return native, teredo

        native, teredo = drive(sim, flow())
        assert min(teredo) > max(native)

    def test_tcp_over_teredo(self, sim, natted_net):
        net = natted_net
        TeredoServer(net["server"], net["udp_srv"])
        ta = TeredoClient(net["a"], net["udp_a"], ipv4("203.0.113.1"))
        tb = TeredoClient(net["b"], net["udp_b"], ipv4("203.0.113.1"))
        tcp_a, tcp_b = TcpStack(net["a"]), TcpStack(net["b"])
        got = {}

        def flow():
            yield sim.process(ta.qualify())
            addr_b = yield sim.process(tb.qualify())
            listener = tcp_b.listen(80)

            def server_side():
                conn = yield listener.accept()
                data = yield from conn.recv_bytes(9)
                got["data"] = data
                conn.write(b"tunneled")

            sim.process(server_side())
            conn = yield sim.process(tcp_a.open_connection(addr_b, 80))
            got["reply"] = yield from conn.recv_bytes(8) if conn.write(b"over v6!!") is None else None

        sim.process(flow())
        sim.run(until=30)
        assert got.get("data") == b"over v6!!"
        assert got.get("reply") == b"tunneled"


class TestTeredoHostileInput:
    """Regressions for the RA hardening: a truncated or corrupt router
    advertisement must never kill the client's qualification loop."""

    def test_parse_ra_roundtrip(self):
        import struct

        from repro.net.teredo import parse_ra

        ra = b"\x02" + ipv4("198.51.100.1").packed() + struct.pack(">H", 4242)
        assert parse_ra(ra) == (ipv4("198.51.100.1"), 4242)

    def test_parse_ra_rejects_wrong_lengths(self):
        from repro.net.teredo import TeredoParseError, parse_ra

        for n in (0, 1, 5, 7, 40):  # total length 1 + n != 7
            with pytest.raises(TeredoParseError):
                parse_ra(b"\x02" + b"\x00" * n)

    def test_hostile_ra_ignored_during_qualification(self, sim, natted_net, drive):
        import struct

        from repro.net.teredo import TEREDO_PORT

        net = natted_net
        sock = net["udp_srv"].bind(TEREDO_PORT)

        def hostile_then_honest_server():
            _data, (src, port) = yield sock.recvfrom()
            # A truncated RA used to escape as struct.error from _await_ra
            # and kill the qualification process.
            sock.sendto(b"\x02\x01", src, port)
            sock.sendto(b"\x02" + src.packed() + struct.pack(">H", port), src, port)

        sim.process(hostile_then_honest_server())
        client = TeredoClient(net["a"], net["udp_a"], ipv4("203.0.113.1"))
        addr = drive(sim, client.qualify())
        server, mapped, _port = parse_teredo_address(addr)
        assert server == ipv4("203.0.113.1")
        assert mapped == ipv4("198.51.100.1")
