"""Seeded randomized round-trip and truncation tests for the HIP wire codec.

Every ``build_*``/``parse_*`` pair must round-trip arbitrary valid inputs
and reject every truncation/corruption with :class:`HipParseError` — never
a raw ``struct.error`` escaping to the caller.
"""

from __future__ import annotations

import random
import struct

import pytest

from repro.hip import packets as hp
from repro.net.addresses import IPAddress
from tests.wire_fuzz import stomp_fields, sweep_byte_flips, sweep_truncations

RNG = random.Random(0x51EE7)
ROUNDS = 25


def _hit(rng: random.Random) -> IPAddress:
    return IPAddress(6, rng.getrandbits(128))


def _v4(rng: random.Random) -> IPAddress:
    return IPAddress(4, rng.getrandbits(32))


class TestParamRoundTrips:
    def test_puzzle(self):
        for _ in range(ROUNDS):
            k, exp, opaque = RNG.randrange(256), RNG.randrange(256), RNG.randrange(1 << 16)
            i = RNG.randbytes(8)
            assert hp.parse_puzzle(hp.build_puzzle(k, exp, opaque, i)) == (k, exp, opaque, i)

    def test_solution(self):
        for _ in range(ROUNDS):
            k, opaque = RNG.randrange(256), RNG.randrange(1 << 16)
            i, j = RNG.randbytes(8), RNG.randbytes(8)
            assert hp.parse_solution(hp.build_solution(k, opaque, i, j)) == (k, opaque, i, j)

    def test_dh(self):
        for _ in range(ROUNDS):
            group = RNG.randrange(256)
            public = RNG.randbytes(RNG.randrange(0, 256))
            assert hp.parse_dh(hp.build_dh(group, public)) == (group, public)

    def test_esp_info(self):
        for _ in range(ROUNDS):
            old, new, idx = (RNG.getrandbits(32), RNG.getrandbits(32), RNG.getrandbits(16))
            assert hp.parse_esp_info(hp.build_esp_info(old, new, idx)) == (idx, old, new)

    def test_host_id(self):
        for _ in range(ROUNDS):
            hi = RNG.randbytes(RNG.randrange(0, 128))
            di = RNG.randbytes(RNG.randrange(0, 64))
            assert hp.parse_host_id(hp.build_host_id(hi, di)) == (hi, di)

    def test_locator(self):
        for _ in range(ROUNDS):
            # Lifetimes must survive the float32 on the wire exactly.
            addrs = [
                (_v4(RNG), float(RNG.randrange(1, 1 << 16)))
                for _ in range(RNG.randrange(0, 5))
            ]
            assert hp.parse_locator(hp.build_locator(addrs)) == addrs

    def test_seq_ack_transform(self):
        for _ in range(ROUNDS):
            uid = RNG.getrandbits(32)
            assert hp.parse_seq(hp.build_seq(uid)) == uid
            ids = [RNG.getrandbits(32) for _ in range(RNG.randrange(0, 6))]
            assert hp.parse_ack(hp.build_ack(ids)) == ids
            suites = [RNG.getrandbits(16) for _ in range(RNG.randrange(0, 6))]
            assert hp.parse_transform(hp.build_transform(suites)) == suites


# (builder output, parser) pairs used by the truncation sweep below.
_PAIRS = [
    (lambda rng: hp.build_puzzle(1, 2, 3, rng.randbytes(8)), hp.parse_puzzle),
    (lambda rng: hp.build_solution(1, 3, rng.randbytes(8), rng.randbytes(8)), hp.parse_solution),
    (lambda rng: hp.build_dh(5, rng.randbytes(32)), hp.parse_dh),
    (lambda rng: hp.build_esp_info(1, 2, 3), hp.parse_esp_info),
    (lambda rng: hp.build_host_id(rng.randbytes(33), b"host.example"), hp.parse_host_id),
    (lambda rng: hp.build_locator([(_v4(rng), 60.0), (_v4(rng), 7.0)]), hp.parse_locator),
    (lambda rng: hp.build_seq(9), hp.parse_seq),
]


class TestTruncationNeverEscapesStructError:
    @pytest.mark.parametrize("build, parse", _PAIRS, ids=lambda p: getattr(p, "__name__", "build"))
    def test_every_strict_prefix_rejected(self, build, parse):
        sweep_truncations(build(RNG), parse, hp.HipParseError)

    def test_variable_stride_parsers_reject_ragged_lengths(self):
        full = hp.build_ack([1, 2, 3])
        for cut in range(len(full)):
            if cut % 4:
                with pytest.raises(hp.HipParseError):
                    hp.parse_ack(full[:cut])
            else:
                assert hp.parse_ack(full[:cut]) == [1, 2, 3][: cut // 4]
        full = hp.build_transform([1, 2, 3])
        for cut in range(len(full)):
            if cut % 2:
                with pytest.raises(hp.HipParseError):
                    hp.parse_transform(full[:cut])

    def test_locator_trailing_garbage_rejected(self):
        full = hp.build_locator([(_v4(RNG), 60.0)])
        with pytest.raises(hp.HipParseError):
            hp.parse_locator(full + b"\x00" * 3)

    def test_dh_inflated_declared_length_rejected(self):
        raw = hp.build_dh(5, b"\x01" * 16)
        inflated = raw[:1] + struct.pack(">H", 200) + raw[3:]
        with pytest.raises(hp.HipParseError):
            hp.parse_dh(inflated)


class TestPacketRoundTrips:
    def _random_packet(self, rng: random.Random) -> hp.HipPacket:
        pkt = hp.HipPacket(
            packet_type=rng.choice(list(hp.PACKET_NAMES)),
            sender_hit=_hit(rng),
            receiver_hit=_hit(rng),
            controls=rng.getrandbits(16),
        )
        codes = rng.sample(
            [hp.ESP_INFO, hp.LOCATOR, hp.PUZZLE, hp.SOLUTION, hp.SEQ,
             hp.DIFFIE_HELLMAN, hp.HOST_ID, hp.HMAC_PARAM, hp.HIP_SIGNATURE],
            k=rng.randrange(0, 6),
        )
        for code in codes:
            pkt.add(code, rng.randbytes(rng.randrange(0, 64)))
        return pkt

    def test_serialize_parse_round_trip(self):
        for _ in range(ROUNDS):
            pkt = self._random_packet(RNG)
            raw = pkt.serialize()
            back = hp.HipPacket.parse(raw)
            assert back == pkt
            assert back.serialize() == raw

    def test_every_truncation_rejected_with_parse_error(self):
        pkt = self._random_packet(random.Random(7))
        while not pkt.params:
            pkt = self._random_packet(random.Random(8))
        sweep_truncations(pkt.serialize(), hp.HipPacket.parse, hp.HipParseError)

    def test_random_byte_flips_never_raise_struct_error(self):
        rng = random.Random(0xF1175)
        raw = self._random_packet(rng).serialize()
        sweep_byte_flips(raw, hp.HipPacket.parse, hp.HipParseError, rng)

    def test_length_field_stomps_never_raise_struct_error(self):
        rng = random.Random(0x57034)
        raw = self._random_packet(rng).serialize()
        stomp_fields(raw, hp.HipPacket.parse, hp.HipParseError, rng)

    def test_oversized_param_rejected_at_serialize(self):
        with pytest.raises(hp.HipParseError):
            hp.Param(hp.PUZZLE, b"\x00" * 65536).serialize()
        with pytest.raises(hp.HipParseError):
            hp.Param(-1, b"").serialize()
