"""HIP base exchange and data-path integration tests."""

import random

import pytest

from repro.hip.daemon import HipConfig, HipDaemon, HipError
from repro.hip.esp import EspMode
from repro.hip.identity import HostIdentity
from repro.net.addresses import ipv4, is_lsi
from repro.net.icmp import IcmpStack, ping
from repro.net.tcp import TcpStack
from repro.net.topology import lan_pair
from repro.sim import Simulator

A, B = ipv4("10.0.0.1"), ipv4("10.0.0.2")


class TestBaseExchange:
    def test_association_establishes(self, hip_pair, drive):
        sim, a, b, da, db = hip_pair
        assoc = drive(sim, da.associate(db.hit))
        assert assoc.is_established
        assert da.assocs[db.hit].role == "initiator"
        assert db.assocs[da.hit].role == "responder"
        assert da.bex_completed == 1 and db.bex_completed == 1

    def test_sas_installed_with_matching_spis(self, hip_pair, drive):
        sim, a, b, da, db = hip_pair
        drive(sim, da.associate(db.hit))
        aa = da.assocs[db.hit]
        bb = db.assocs[da.hit]
        assert aa.sa_out.spi == bb.sa_in.spi
        assert aa.sa_in.spi == bb.sa_out.spi
        assert aa.sa_out.enc_key == bb.sa_in.enc_key

    def test_bex_message_sequence_costs_counted(self, hip_pair, drive):
        sim, a, b, da, db = hip_pair
        drive(sim, da.associate(db.hit))
        # Initiator: verify R1, solve puzzle, DH x2, sign I2, verify R2.
        assert da.meter.ops.get("asym.verify.r1") == 1
        assert da.meter.ops.get("puzzle.solve") == 1
        assert da.meter.ops.get("asym.sign.i2") == 1
        assert da.meter.ops.get("asym.verify.r2") == 1
        # Responder: puzzle verify, DH, verify I2, sign R2.
        assert db.meter.ops.get("puzzle.verify") == 1
        assert db.meter.ops.get("asym.verify.i2") == 1
        assert db.meter.ops.get("asym.sign.r2") == 1

    def test_associate_unknown_peer_fails(self, hip_pair):
        sim, a, b, da, db = hip_pair
        from repro.hip.identity import hit_from_public_key

        stranger = hit_from_public_key(b"nobody")

        def flow():
            with pytest.raises(HipError):
                yield from da.associate(stranger, timeout=5.0)
            return True

        proc = sim.process(flow())
        assert sim.run(until=proc) is True

    def test_associate_unreachable_locator_times_out(self, hip_pair):
        sim, a, b, da, db = hip_pair
        da.hosts[db.hit] = [ipv4("10.0.0.250")]  # nobody there

        def flow():
            with pytest.raises(HipError):
                yield from da.associate(db.hit, timeout=10.0)
            return True

        proc = sim.process(flow())
        assert sim.run(until=proc) is True

    def test_concurrent_associations_to_same_peer_share_state(self, hip_pair):
        sim, a, b, da, db = hip_pair

        def one():
            assoc = yield from da.associate(db.hit)
            return assoc

        p1 = sim.process(one())
        p2 = sim.process(one())
        sim.run(until=p1)
        sim.run(until=p2)
        assert da.bex_completed == 1  # only one exchange ran

    def test_second_association_reuses_established(self, hip_pair, drive):
        sim, a, b, da, db = hip_pair
        drive(sim, da.associate(db.hit))
        drive(sim, da.associate(db.hit))
        assert da.bex_completed == 1

    def test_ecdsa_identities_interoperate(self, sim, session_identities):
        a, b = lan_pair(sim, "a", "b")
        ident_a = session_identities["ecdsa"]
        ident_b = session_identities["c"]
        da = HipDaemon(a, ident_a, rng=random.Random(1))
        db = HipDaemon(b, ident_b, rng=random.Random(2))
        da.add_peer(db.hit, [B])
        db.add_peer(da.hit, [A])
        proc = sim.process(da.associate(db.hit))
        assoc = sim.run(until=proc)
        assert assoc.is_established


class TestDataPath:
    def test_tcp_over_hits_real_payload(self, hip_pair):
        sim, a, b, da, db = hip_pair
        ta, tb = TcpStack(a), TcpStack(b)
        got = {}

        def server():
            listener = tb.listen(8080)
            conn = yield listener.accept()
            got["request"] = yield from conn.recv_bytes(12)
            conn.write(b"hip response")

        def client():
            conn = yield sim.process(ta.open_connection(db.hit, 8080))
            conn.write(b"over the HIT")
            got["reply"] = yield from conn.recv_bytes(12)

        sim.process(server())
        sim.process(client())
        sim.run(until=60)
        assert got == {"request": b"over the HIT", "reply": b"hip response"}
        # Data plane actually ran: SAs counted protected/verified packets.
        assert da.assocs[db.hit].sa_out.packets_protected > 3

    def test_tcp_over_lsi(self, hip_pair):
        sim, a, b, da, db = hip_pair
        ta, tb = TcpStack(a), TcpStack(b)
        lsi_b = da.lsi_for_peer(db.hit)
        assert is_lsi(lsi_b)
        got = {}

        def server():
            listener = tb.listen(8080)
            conn = yield listener.accept()
            got["data"] = yield from conn.recv_bytes(8)
            # The responder sees its own LSI view of the initiator.
            got["remote"] = conn.remote_addr

        def client():
            conn = yield sim.process(ta.open_connection(lsi_b, 8080))
            conn.write(b"via lsi!")

        sim.process(server())
        sim.process(client())
        sim.run(until=60)
        assert got["data"] == b"via lsi!"
        assert is_lsi(got["remote"])

    def test_ping_over_hit_and_lsi(self, hip_pair, drive):
        sim, a, b, da, db = hip_pair
        icmp_a, _ = IcmpStack(a), IcmpStack(b)

        def flow():
            hit_rtts = yield sim.process(ping(icmp_a, db.hit, count=3, interval=0.01))
            lsi_rtts = yield sim.process(
                ping(icmp_a, da.lsi_for_peer(db.hit), count=3, interval=0.01)
            )
            return hit_rtts, lsi_rtts

        hit_rtts, lsi_rtts = drive(sim, flow())
        assert all(r is not None for r in hit_rtts + lsi_rtts)
        # Steady-state LSI RTT exceeds HIT RTT (extra translation cost).
        assert sum(lsi_rtts[1:]) > sum(hit_rtts[1:])

    def test_first_packet_triggers_bex_and_is_not_lost(self, hip_pair):
        """Packets sent before association completes are queued, not dropped."""
        sim, a, b, da, db = hip_pair
        icmp_a, _ = IcmpStack(a), IcmpStack(b)

        def flow():
            rtt = yield sim.process(icmp_a.echo(db.hit, timeout=20.0))
            return rtt

        proc = sim.process(flow())
        rtt = sim.run(until=proc)
        assert rtt is not None
        # First RTT includes the whole base exchange.
        assert rtt > 0.001

    def test_esp_packets_on_wire_not_plaintext(self, hip_pair):
        """Wire packets between the nodes carry ESP, not raw TCP."""
        sim, a, b, da, db = hip_pair
        ta, tb = TcpStack(a), TcpStack(b)
        wire_protos = []
        endpoint = a.interface("eth0")._endpoint
        original_send = endpoint.send

        def spy(packet):
            wire_protos.append(packet.outer.proto)
            return original_send(packet)

        endpoint.send = spy

        def server():
            listener = tb.listen(9000)
            conn = yield listener.accept()
            yield from conn.recv_bytes(4)

        def client():
            conn = yield sim.process(ta.open_connection(db.hit, 9000))
            conn.write(b"data")

        sim.process(server())
        sim.process(client())
        sim.run(until=60)
        assert "tcp" not in wire_protos
        assert "esp" in wire_protos and "hip" in wire_protos

    def test_close_tears_down_association(self, hip_pair, drive):
        sim, a, b, da, db = hip_pair
        drive(sim, da.associate(db.hit))
        da.close(db.hit)
        sim.run(until=sim.now + 5)
        assert da.assocs[db.hit].state == "CLOSED"
        assert db.assocs[da.hit].state == "CLOSED"

    def test_meter_separates_asym_and_sym(self, hip_pair):
        sim, a, b, da, db = hip_pair
        ta, tb = TcpStack(a), TcpStack(b)

        from repro.net.packet import VirtualPayload

        def server():
            listener = tb.listen(8080)
            conn = yield listener.accept()
            yield from conn.recv_bytes(100_000)

        def client():
            conn = yield sim.process(ta.open_connection(db.hit, 8080))
            conn.write(VirtualPayload(100_000))

        sim.process(server())
        sim.process(client())
        sim.run(until=60)
        asym_ops = da.meter.total_ops("asym.")
        esp_ops = da.meter.total_ops("esp.")
        # R1 precompute + verify R1 + 2 DH + sign I2 + verify R2 = 6,
        # regardless of how much data flows — HIP's amortization claim.
        assert asym_ops <= 6  # control plane only
        assert esp_ops > 20  # data plane is all symmetric per-packet work


class TestConfigVariants:
    def _pair(self, sim, session_identities, config):
        a, b = lan_pair(sim, "a", "b")
        da = HipDaemon(a, session_identities["a"], rng=random.Random(1), config=config)
        db = HipDaemon(b, session_identities["b"], rng=random.Random(2), config=config)
        da.add_peer(db.hit, [B])
        db.add_peer(da.hit, [A])
        return a, b, da, db

    def test_tunnel_mode_bigger_packets(self, session_identities):
        sizes = {}
        for mode in (EspMode.BEET, EspMode.TUNNEL):
            sim = Simulator()
            a, b, da, db = self._pair(
                sim, session_identities, HipConfig(esp_mode=mode)
            )
            icmp_a, _ = IcmpStack(a), IcmpStack(b)
            link_ep = a.interface("eth0")._endpoint
            proc = sim.process(ping(icmp_a, db.hit, count=5, interval=0.01))
            sim.run(until=proc)
            sizes[mode] = link_ep.tx_bytes
        assert sizes[EspMode.TUNNEL] > sizes[EspMode.BEET]

    def test_null_encryption_config(self, sim, session_identities, drive):
        a, b, da, db = self._pair(
            sim, session_identities, HipConfig(esp_encrypt=False)
        )
        assoc = drive(sim, da.associate(db.hit))
        assert assoc.sa_out.encrypt is False

    def test_higher_puzzle_difficulty_costs_more(self, session_identities):
        costs = {}
        for k in (0, 10):
            sim = Simulator()
            a, b, da, db = self._pair(
                sim, session_identities, HipConfig(puzzle_k=k)
            )
            proc = sim.process(da.associate(db.hit))
            sim.run(until=proc)
            costs[k] = da.meter.seconds.get("puzzle.solve", 0.0)
        assert costs[10] > costs[0] * 8


class TestEspMeterKeys:
    def test_dataplane_charges_prebound_meter_keys(self, hip_pair, drive):
        """The ESP fast path charges the four pre-bound meter keys (no
        per-packet f-string key formatting); both addressing modes land
        under their own key."""
        sim, a, b, da, db = hip_pair
        icmp_a, _ = IcmpStack(a), IcmpStack(b)

        def flow():
            yield sim.process(ping(icmp_a, db.hit, count=3, interval=0.01))
            yield sim.process(
                ping(icmp_a, da.lsi_for_peer(db.hit), count=3, interval=0.01)
            )
            return True

        assert drive(sim, flow()) is True
        assert da.meter.ops.get("esp.encrypt.hit", 0) >= 3
        assert da.meter.ops.get("esp.encrypt.lsi", 0) >= 3
        assert db.meter.ops.get("esp.decrypt.hit", 0) >= 3
        assert db.meter.ops.get("esp.decrypt.lsi", 0) >= 3
        # No stray dynamically-formatted variants crept back in.
        assert not [k for k in da.meter.ops if k.startswith("esp.encrypt.")
                    and k not in ("esp.encrypt.hit", "esp.encrypt.lsi")]
