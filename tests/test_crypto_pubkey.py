"""RSA, DH, ECDSA and puzzle tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.dh import DHKeyPair, MODP_GROUPS
from repro.crypto.ecc import (
    EcdsaKeyPair,
    P256,
    ecdsa_verify,
    is_on_curve,
    point_add,
    scalar_mult,
)
from repro.crypto.puzzle import (
    Puzzle,
    expected_attempts,
    solve_puzzle,
    verify_solution,
)
from repro.crypto.rsa import RsaError, RsaKeyPair, RsaPublicKey


@pytest.fixture(scope="module")
def rsa512():
    return RsaKeyPair.generate(512, random.Random(99))


class TestRsa:
    def test_keygen_modulus_size(self, rsa512):
        assert rsa512.public.bits == 512
        assert rsa512.p != rsa512.q

    def test_sign_verify(self, rsa512):
        sig = rsa512.sign(b"the message")
        assert rsa512.public.verify(b"the message", sig)

    def test_verify_rejects_wrong_message(self, rsa512):
        sig = rsa512.sign(b"the message")
        assert not rsa512.public.verify(b"the messagE", sig)

    def test_verify_rejects_tampered_signature(self, rsa512):
        sig = bytearray(rsa512.sign(b"m"))
        sig[0] ^= 1
        assert not rsa512.public.verify(b"m", bytes(sig))

    def test_verify_rejects_wrong_length(self, rsa512):
        assert not rsa512.public.verify(b"m", b"short")

    def test_sign_sha1_digestinfo(self, rsa512):
        sig = rsa512.sign(b"m", hash_name="sha1")
        assert rsa512.public.verify(b"m", sig, hash_name="sha1")
        assert not rsa512.public.verify(b"m", sig, hash_name="sha256")

    def test_encrypt_decrypt(self, rsa512, rng):
        ct = rsa512.public.encrypt(b"premaster secret", rng)
        assert rsa512.decrypt(ct) == b"premaster secret"

    def test_encrypt_randomized(self, rsa512, rng):
        a = rsa512.public.encrypt(b"x", rng)
        b = rsa512.public.encrypt(b"x", rng)
        assert a != b

    def test_decrypt_rejects_garbage(self, rsa512):
        with pytest.raises(RsaError):
            rsa512.decrypt(bytes(rsa512.public.byte_length))

    def test_decrypt_rejects_wrong_length(self, rsa512):
        with pytest.raises(RsaError):
            rsa512.decrypt(b"abc")

    def test_message_too_long(self, rsa512, rng):
        with pytest.raises(ValueError):
            rsa512.public.encrypt(bytes(rsa512.public.byte_length - 10), rng)

    def test_public_key_wire_roundtrip(self, rsa512):
        encoded = rsa512.public.to_bytes()
        decoded = RsaPublicKey.from_bytes(encoded)
        assert decoded == rsa512.public

    def test_public_key_truncated_encoding(self):
        with pytest.raises(ValueError):
            RsaPublicKey.from_bytes(b"\x00")

    def test_keygen_validation(self, rng):
        with pytest.raises(ValueError):
            RsaKeyPair.generate(64, rng)
        with pytest.raises(ValueError):
            RsaKeyPair.generate(513, rng)

    def test_crt_matches_plain_exponentiation(self, rsa512):
        c = 0xDEADBEEF
        assert rsa512._decrypt_int(c) == pow(c, rsa512.d, rsa512.public.n)


class TestDh:
    @pytest.mark.parametrize("group_id", [1, 2])
    def test_shared_secret_agreement(self, group_id, rng):
        params = MODP_GROUPS[group_id]
        a = DHKeyPair.generate(params, rng)
        b = DHKeyPair.generate(params, rng)
        assert a.shared_secret(b.public) == b.shared_secret(a.public)

    def test_secret_length_fixed(self, rng):
        params = MODP_GROUPS[1]
        a = DHKeyPair.generate(params, rng)
        b = DHKeyPair.generate(params, rng)
        assert len(a.shared_secret(b.public)) == params.byte_length

    def test_rejects_degenerate_peer_values(self, rng):
        params = MODP_GROUPS[1]
        kp = DHKeyPair.generate(params, rng)
        for bad in (0, 1, params.prime - 1, params.prime, params.prime + 5):
            with pytest.raises(ValueError):
                kp.shared_secret(bad)

    def test_group_parameters_sane(self):
        for gid, params in MODP_GROUPS.items():
            assert params.generator == 2
            assert params.prime % 2 == 1
            assert params.bits in (768, 1024, 1536, 2048)

    def test_public_bytes_length(self, rng):
        params = MODP_GROUPS[1]
        kp = DHKeyPair.generate(params, rng)
        assert len(kp.public_bytes()) == params.byte_length


class TestEcdsa:
    @pytest.fixture(scope="class")
    def keypair(self):
        return EcdsaKeyPair.generate(random.Random(5))

    def test_generator_on_curve(self):
        assert is_on_curve((P256.gx, P256.gy), P256)

    def test_point_order(self):
        assert scalar_mult(P256.n, (P256.gx, P256.gy), P256) is None

    def test_scalar_mult_distributes(self):
        g = (P256.gx, P256.gy)
        lhs = scalar_mult(7, g, P256)
        rhs = point_add(scalar_mult(3, g, P256), scalar_mult(4, g, P256), P256)
        assert lhs == rhs

    def test_sign_verify(self, keypair, rng):
        sig = keypair.sign(b"hello", rng)
        assert ecdsa_verify(keypair.public, b"hello", sig)

    def test_verify_rejects_modified_message(self, keypair, rng):
        sig = keypair.sign(b"hello", rng)
        assert not ecdsa_verify(keypair.public, b"hellO", sig)

    def test_verify_rejects_tampered_sig(self, keypair, rng):
        sig = bytearray(keypair.sign(b"m", rng))
        sig[10] ^= 0x40
        assert not ecdsa_verify(keypair.public, b"m", bytes(sig))

    def test_verify_rejects_zero_sig(self, keypair):
        assert not ecdsa_verify(keypair.public, b"m", bytes(64))

    def test_signatures_randomized(self, keypair):
        r1, r2 = random.Random(1), random.Random(2)
        assert keypair.sign(b"m", r1) != keypair.sign(b"m", r2)

    def test_ecdh_agreement(self, rng):
        a = EcdsaKeyPair.generate(rng)
        b = EcdsaKeyPair.generate(rng)
        assert a.ecdh(b.public) == b.ecdh(a.public)

    def test_ecdh_rejects_off_curve_point(self, keypair):
        with pytest.raises(ValueError):
            keypair.ecdh((1, 2))

    def test_public_bytes_roundtrip(self, keypair):
        data = keypair.public_bytes()
        assert EcdsaKeyPair.public_from_bytes(data) == keypair.public

    def test_public_from_bytes_validation(self):
        with pytest.raises(ValueError):
            EcdsaKeyPair.public_from_bytes(b"\x04" + bytes(63))
        with pytest.raises(ValueError):
            EcdsaKeyPair.public_from_bytes(b"\x02" + bytes(64))


class TestPuzzle:
    def test_solve_and_verify(self, rng):
        puzzle = Puzzle.fresh(8, rng)
        hit_i, hit_r = bytes(16), bytes(range(16))
        j, attempts = solve_puzzle(puzzle, hit_i, hit_r, rng)
        assert verify_solution(puzzle, hit_i, hit_r, j)
        assert attempts >= 1

    def test_wrong_hits_fail_verification(self, rng):
        puzzle = Puzzle.fresh(8, rng)
        j, _ = solve_puzzle(puzzle, bytes(16), bytes(16), rng)
        assert not verify_solution(puzzle, b"\x01" * 16, bytes(16), j)

    def test_k_zero_any_j(self, rng):
        puzzle = Puzzle.fresh(0, rng)
        assert verify_solution(puzzle, bytes(16), bytes(16), bytes(8))

    def test_wrong_j_length_rejected(self, rng):
        puzzle = Puzzle.fresh(0, rng)
        assert not verify_solution(puzzle, bytes(16), bytes(16), bytes(4))

    def test_difficulty_scales_attempts(self):
        """Mean attempts grows ~2^K (statistical, generous tolerance)."""
        rng = random.Random(123)
        hit_i, hit_r = bytes(16), bytes(16)

        def mean_attempts(k, n=30):
            total = 0
            for _ in range(n):
                puzzle = Puzzle.fresh(k, rng)
                _, attempts = solve_puzzle(puzzle, hit_i, hit_r, rng)
                total += attempts
            return total / n

        easy = mean_attempts(2)
        hard = mean_attempts(7)
        assert hard > easy * 4  # expectation ratio is 32

    def test_expected_attempts(self):
        assert expected_attempts(0) == 1
        assert expected_attempts(10) == 1024

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            Puzzle(i=bytes(4), k=5)
        with pytest.raises(ValueError):
            Puzzle(i=bytes(8), k=60)
