"""TCP behaviour tests: handshake, transfer, loss recovery, flow control."""

import pytest

from repro.net.addresses import ipv4
from repro.net.link import Link
from repro.net.node import Node
from repro.net.packet import VirtualPayload
from repro.net.tcp import DEFAULT_MSS, TcpError, TcpStack
from repro.net.topology import lan_pair
from repro.sim import RngStreams, Simulator

A, B = ipv4("10.0.0.1"), ipv4("10.0.0.2")


@pytest.fixture
def stacks(sim):
    a, b = lan_pair(sim, "a", "b")
    return sim, TcpStack(a), TcpStack(b)


def echo_server(sim, tcp, port=80, nbytes=5):
    def server():
        listener = tcp.listen(port)
        conn = yield listener.accept()
        data = yield from conn.recv_bytes(nbytes)
        conn.write(bytes(reversed(bytes(data))))
        conn.close()

    return sim.process(server())


class TestHandshakeAndData:
    def test_three_way_handshake_and_echo(self, stacks):
        sim, ta, tb = stacks
        echo_server(sim, tb)

        def client():
            conn = yield sim.process(ta.open_connection(B, 80))
            assert conn.state == "ESTABLISHED"
            conn.write(b"hello")
            reply = yield from conn.recv_bytes(5)
            return reply

        proc = sim.process(client())
        assert sim.run(until=proc) == b"olleh"

    def test_connect_refused_gets_rst(self, stacks):
        sim, ta, tb = stacks

        def client():
            conn = ta.connect(B, 9999)  # nothing listening
            with pytest.raises(TcpError):
                yield conn.established
            return conn.state

        proc = sim.process(client())
        assert sim.run(until=proc) == "CLOSED"

    def test_large_real_transfer_integrity(self, stacks):
        sim, ta, tb = stacks
        blob = bytes(range(256)) * 40  # 10240 bytes, spans many segments
        got = {}

        def server():
            listener = tb.listen(80)
            conn = yield listener.accept()
            got["data"] = yield from conn.recv_bytes(len(blob))

        def client():
            conn = yield sim.process(ta.open_connection(B, 80))
            conn.write(blob)
            conn.close()

        sim.process(server())
        sim.process(client())
        sim.run(until=5)
        assert got["data"] == blob

    def test_many_small_writes_preserve_order(self, stacks):
        sim, ta, tb = stacks
        got = {}

        def server():
            listener = tb.listen(80)
            conn = yield listener.accept()
            got["data"] = yield from conn.recv_bytes(300)

        def client():
            conn = yield sim.process(ta.open_connection(B, 80))
            for i in range(100):
                conn.write(bytes([i % 256]) * 3)

        sim.process(server())
        sim.process(client())
        sim.run(until=5)
        expected = b"".join(bytes([i % 256]) * 3 for i in range(100))
        assert got["data"] == expected

    def test_mixed_real_and_virtual_stream(self, stacks):
        sim, ta, tb = stacks
        got = {}

        def server():
            listener = tb.listen(80)
            conn = yield listener.accept()
            head = yield from conn.recv_bytes(4)
            body = yield from conn.recv_bytes(10_000)
            tail = yield from conn.recv_bytes(4)
            got.update(head=head, body=body, tail=tail)

        def client():
            conn = yield sim.process(ta.open_connection(B, 80))
            conn.write(b"HEAD")
            conn.write(VirtualPayload(10_000))
            conn.write(b"TAIL")

        sim.process(server())
        sim.process(client())
        sim.run(until=10)
        assert got["head"] == b"HEAD"
        assert isinstance(got["body"], VirtualPayload) and len(got["body"]) == 10_000
        assert got["tail"] == b"TAIL"

    def test_bidirectional_simultaneous_transfer(self, stacks):
        sim, ta, tb = stacks
        got = {}

        def server():
            listener = tb.listen(80)
            conn = yield listener.accept()
            conn.write(b"S" * 4000)
            got["at_b"] = yield from conn.recv_bytes(4000)

        def client():
            conn = yield sim.process(ta.open_connection(B, 80))
            conn.write(b"C" * 4000)
            got["at_a"] = yield from conn.recv_bytes(4000)

        sim.process(server())
        sim.process(client())
        sim.run(until=10)
        assert got["at_b"] == b"C" * 4000
        assert got["at_a"] == b"S" * 4000

    def test_fin_teardown_both_ways(self, stacks):
        sim, ta, tb = stacks
        states = {}

        def server():
            listener = tb.listen(80)
            conn = yield listener.accept()
            eof = yield conn.recv()
            assert eof == b""
            conn.close()
            yield conn.closed
            states["server"] = conn.state

        def client():
            conn = yield sim.process(ta.open_connection(B, 80))
            conn.close()
            yield conn.closed
            states["client"] = conn.state

        sim.process(server())
        sim.process(client())
        sim.run(until=10)
        assert states == {"server": "CLOSED", "client": "CLOSED"}

    def test_abort_resets_peer(self, stacks):
        sim, ta, tb = stacks
        result = {}

        def server():
            listener = tb.listen(80)
            conn = yield listener.accept()
            result["err"] = yield conn.closed

        def client():
            conn = yield sim.process(ta.open_connection(B, 80))
            yield sim.timeout(0.01)
            conn.abort()

        sim.process(server())
        sim.process(client())
        sim.run(until=5)
        assert isinstance(result["err"], TcpError)

    def test_delack_timer_cancelled_on_teardown(self, stacks):
        """Regression: a pending delayed-ACK TimerHandle must not survive
        teardown (it kept the closed connection live on the heap and fired
        into it after close)."""
        sim, ta, tb = stacks
        holder = {}

        def server():
            listener = tb.listen(80)
            conn = yield listener.accept()
            holder["conn"] = conn
            yield conn.closed

        def client():
            conn = yield sim.process(ta.open_connection(B, 80))
            conn.write(b"x")  # a lone segment arms the receiver's delack
            yield sim.timeout(0.01)  # < DELACK_TIMEOUT: still pending
            conn.abort()  # RST tears the peer down with the timer armed
            yield sim.timeout(0.01)

        sim.process(server())
        proc = sim.process(client())
        sim.run(until=proc)
        sconn = holder["conn"]
        assert sconn.state == "CLOSED"
        handle = sconn._delack_handle
        assert handle is None or not handle.active
        assert not sconn._delack_timer_armed

    def test_write_after_close_rejected(self, stacks):
        sim, ta, tb = stacks
        echo_server(sim, tb)

        def client():
            conn = yield sim.process(ta.open_connection(B, 80))
            conn.close()
            with pytest.raises(TcpError):
                conn.write(b"late")
            return True

        proc = sim.process(client())
        assert sim.run(until=proc) is True

    def test_duplicate_listen_rejected(self, stacks):
        _sim, _ta, tb = stacks
        tb.listen(80)
        with pytest.raises(OSError):
            tb.listen(80)

    def test_concurrent_connections_demuxed(self, stacks):
        sim, ta, tb = stacks
        got = []

        def server():
            listener = tb.listen(80)
            while True:
                conn = yield listener.accept()
                sim.process(serve_one(conn))

        def serve_one(conn):
            data = yield from conn.recv_bytes(2)
            got.append(bytes(data))
            conn.write(data)

        def client(tag):
            conn = yield sim.process(ta.open_connection(B, 80))
            conn.write(tag)
            reply = yield from conn.recv_bytes(2)
            assert reply == tag

        sim.process(server())
        for i in range(5):
            sim.process(client(b"%02d" % i))
        sim.run(until=5)
        assert sorted(got) == [b"%02d" % i for i in range(5)]


class TestLossRecovery:
    def _lossy_pair(self, sim, loss_rate):
        rng = RngStreams(17).stream("loss")
        a = Node(sim, "a")
        b = Node(sim, "b")
        link = Link(sim, bandwidth_bps=50e6, delay_s=2e-3,
                    loss_rate=loss_rate, loss_rng=rng)
        ia = a.add_interface("eth0", A)
        ib = b.add_interface("eth0", B)
        link.connect(ia, ib)
        from repro.net.addresses import prefix

        a.routes.add(prefix("10.0.0.0/24"), ia)
        b.routes.add(prefix("10.0.0.0/24"), ib)
        return TcpStack(a), TcpStack(b)

    def test_transfer_completes_despite_loss(self, sim):
        ta, tb = self._lossy_pair(sim, loss_rate=0.03)
        blob_len = 200_000
        got = {}

        def server():
            listener = tb.listen(80)
            conn = yield listener.accept()
            got["data"] = yield from conn.recv_bytes(blob_len)
            got["retx_seen"] = True

        def client():
            conn = yield sim.process(ta.open_connection(B, 80))
            conn.write(VirtualPayload(blob_len))
            got["conn"] = conn

        sim.process(server())
        sim.process(client())
        sim.run(until=120)
        assert len(got["data"]) == blob_len
        assert got["conn"].segments_retransmitted > 0

    def test_real_bytes_survive_loss(self, sim):
        ta, tb = self._lossy_pair(sim, loss_rate=0.05)
        blob = bytes(i % 251 for i in range(30_000))
        got = {}

        def server():
            listener = tb.listen(80)
            conn = yield listener.accept()
            got["data"] = yield from conn.recv_bytes(len(blob))

        def client():
            conn = yield sim.process(ta.open_connection(B, 80))
            conn.write(blob)

        sim.process(server())
        sim.process(client())
        sim.run(until=120)
        assert got["data"] == blob  # bit-exact despite drops and retransmits

    def test_rto_backoff_eventually_gives_up(self, sim):
        """100% loss after SYN: the connection must fail, not hang forever."""
        ta, tb = self._lossy_pair(sim, loss_rate=0.999999)

        def client():
            conn = ta.connect(B, 80)
            with pytest.raises(TcpError):
                yield conn.established
            return True

        proc = sim.process(client())
        assert sim.run(until=proc) is True


class TestCongestionAndFlow:
    def test_throughput_tracks_bottleneck_bandwidth(self, sim):
        a, b = lan_pair(sim, "a", "b", bandwidth_bps=20e6, delay_s=1e-3)
        ta, tb = TcpStack(a), TcpStack(b)
        out = {}
        nbytes = 3_000_000

        def server():
            listener = tb.listen(80)
            conn = yield listener.accept()
            t0 = None
            total = 0
            while total < nbytes:
                chunk = yield conn.recv()
                if t0 is None:
                    t0 = sim.now
                total += len(chunk)
            out["mbps"] = total * 8 / (sim.now - t0) / 1e6

        def client():
            conn = yield sim.process(ta.open_connection(B, 80))
            conn.write(VirtualPayload(nbytes))

        sim.process(server())
        sim.process(client())
        sim.run(until=60)
        assert 14 < out["mbps"] <= 20.2

    def test_receiver_window_limits_throughput(self, sim):
        # High bandwidth, noticeable RTT: window/RTT should bind.
        a, b = lan_pair(sim, "a", "b", bandwidth_bps=1e9, delay_s=5e-3)
        ta, tb = TcpStack(a), TcpStack(b)
        window = 20_000  # bytes; RTT ~10.2 ms -> ~15.7 Mbit/s ceiling
        out = {}

        def server():
            listener = tb.listen(80, recv_window=window)
            conn = yield listener.accept()
            t0 = None
            total = 0
            while total < 2_000_000:
                chunk = yield conn.recv()
                if t0 is None:
                    t0 = sim.now
                total += len(chunk)
            out["mbps"] = total * 8 / (sim.now - t0) / 1e6

        def client():
            conn = yield sim.process(ta.open_connection(B, 80))
            conn.write(VirtualPayload(2_000_000))

        sim.process(server())
        sim.process(client())
        sim.run(until=60)
        expected_ceiling = window * 8 / 0.0102 / 1e6
        assert out["mbps"] < expected_ceiling * 1.1
        assert out["mbps"] > expected_ceiling * 0.5

    def test_slow_start_grows_cwnd(self, stacks):
        sim, ta, tb = stacks

        def sink():
            listener = tb.listen(80)
            conn = yield listener.accept()
            while True:
                chunk = yield conn.recv()
                if isinstance(chunk, bytes) and not chunk:
                    return

        sim.process(sink())

        def client():
            conn = yield sim.process(ta.open_connection(B, 80))
            start_cwnd = conn.cwnd
            conn.write(VirtualPayload(100_000))
            yield sim.timeout(1.0)
            return start_cwnd, conn.cwnd

        proc = sim.process(client())
        start, end = sim.run(until=proc)
        assert end > start * 4

    def test_mss_respected(self, stacks):
        sim, ta, tb = stacks
        sizes = []

        def server():
            listener = tb.listen(80)
            conn = yield listener.accept()
            total = 0
            while total < 50_000:
                chunk = yield conn.recv()
                sizes.append(len(chunk))
                total += len(chunk)

        def client():
            conn = yield sim.process(ta.open_connection(B, 80, mss=500))
            conn.write(VirtualPayload(50_000))

        sim.process(server())
        sim.process(client())
        sim.run(until=30)
        assert max(sizes) <= 500


class TestRegressionBugfixes:
    """Failing-before/passing-after tests for the Reno-era latent bugs."""

    def test_bidirectional_transfer_no_spurious_retransmits(self, stacks):
        """The peer's data segments repeat ``ack == snd_una`` while our own
        data is in flight; the old dup-ACK classification counted them and
        fired spurious fast retransmits on a loss-free link."""
        sim, ta, tb = stacks
        conns = {}

        def server():
            listener = tb.listen(80)
            conn = yield listener.accept()
            conns["b"] = conn
            conn.write(VirtualPayload(500_000))
            yield from conn.recv_bytes(500_000)

        def client():
            conn = yield sim.process(ta.open_connection(B, 80))
            conns["a"] = conn
            conn.write(VirtualPayload(500_000))
            yield from conn.recv_bytes(500_000)

        sim.process(server())
        sim.process(client())
        sim.run(until=60)
        for conn in conns.values():
            assert conn.segments_retransmitted == 0
            assert conn.fast_recoveries == 0

    def test_ephemeral_wrap_skips_port_in_use(self, stacks):
        sim, ta, tb = stacks
        tb.listen(80)
        first = ta.connect(B, 80)
        sim.run(until=1)
        assert first.state == "ESTABLISHED"
        # Force the allocator to wrap straight onto the live port.
        ta._next_ephemeral = first.local_port
        second = ta.connect(B, 80)
        assert second.local_port != first.local_port
        # The original connection's demux entry must be intact.
        key = ta._key(first.local_port, B, 80)
        assert ta._connections[key] is first

    def test_ephemeral_exhaustion_raises(self, stacks):
        _sim, ta, _tb = stacks
        ta._local_ports = {p: 1 for p in range(33000, 65536)}
        with pytest.raises(TcpError, match="exhausted"):
            ta._alloc_ephemeral()

    def test_port_released_after_close(self, stacks):
        sim, ta, tb = stacks

        def server():
            listener = tb.listen(80)
            sconn = yield listener.accept()
            sconn.close()

        sim.process(server())
        conn = ta.connect(B, 80)
        sim.run(until=1)
        port = conn.local_port
        assert ta._local_ports.get(port) == 1
        conn.close()
        sim.run(until=5)
        assert conn.state == "CLOSED"
        assert port not in ta._local_ports

    def _rst_probe(self, sim, flags, seq=0, ack=0, payload=b""):
        """Send a crafted segment at a closed port; return the RST reply."""
        from repro.net.addresses import prefix
        from repro.net.packet import Packet, TCPHeader

        a = Node(sim, "a")
        b = Node(sim, "b")
        link = Link(sim, bandwidth_bps=1e9, delay_s=1e-3)
        ia = a.add_interface("eth0", A)
        ib = b.add_interface("eth0", B)
        link.connect(ia, ib)
        a.routes.add(prefix("10.0.0.0/24"), ia)
        b.routes.add(prefix("10.0.0.0/24"), ib)
        TcpStack(a)  # closed-port stack that must emit the RST
        replies = []
        b.register_protocol(
            "tcp", lambda n, p, i: replies.append(p.find(TCPHeader))
        )
        hdr = TCPHeader(src_port=5555, dst_port=9999, seq=seq, ack=ack,
                        flags=frozenset(flags))
        b.send_ip(A, "tcp", Packet(headers=(hdr,), payload=payload), src=B)
        sim.run(until=1)
        assert len(replies) == 1
        return replies[0]

    def test_rst_to_ack_segment_uses_its_ack_as_seq(self, sim):
        rst = self._rst_probe(sim, {"ACK"}, seq=42, ack=777)
        assert rst.flags == frozenset({"RST"})
        assert rst.seq == 777  # RFC 793: seq taken from the offending ACK
        assert rst.ack == 0

    def test_rst_to_ackless_segment_acks_it_from_seq_zero(self, sim):
        """Old code used tcp.ack (garbage 0) as the RST seq even when the
        segment carried no ACK; RFC 793 wants seq=0, ack=seq+len, ACK set."""
        rst = self._rst_probe(sim, set(), seq=100, payload=b"hello")
        assert rst.flags == frozenset({"RST", "ACK"})
        assert rst.seq == 0
        assert rst.ack == 105  # seq + payload length

    def test_rst_to_ackless_fin_counts_the_fin(self, sim):
        rst = self._rst_probe(sim, {"FIN"}, seq=200)
        assert rst.flags == frozenset({"RST", "ACK"})
        assert rst.ack == 201  # FIN occupies one sequence number

    def _established_receiver(self, stacks):
        sim, ta, tb = stacks
        tb.listen(80)
        conn = ta.connect(B, 80)
        sim.run(until=1)
        assert conn.state == "ESTABLISHED"
        return sim, conn

    def _inject(self, conn, seq, payload, fin=False):
        from repro.net.packet import TCPHeader

        flags = frozenset({"ACK", "FIN"}) if fin else frozenset({"ACK"})
        hdr = TCPHeader(src_port=80, dst_port=conn.local_port,
                        seq=seq, ack=conn.snd_nxt, flags=flags)
        conn._on_segment(hdr, payload)

    def test_partial_overlap_trimmed_to_rcv_nxt(self, stacks):
        """A segment straddling rcv_nxt must contribute only its new bytes;
        the old code re-delivered the overlap, double-counting the stream."""
        sim, conn = self._established_receiver(stacks)
        self._inject(conn, 1, b"A" * 100)    # rcv_nxt -> 101
        self._inject(conn, 51, b"B" * 100)   # bytes 51-100 already delivered
        assert conn.rcv_nxt == 151
        assert conn.bytes_received == 150    # not 200

        def drain():
            data = yield from conn.recv_bytes(150)
            return bytes(data)

        proc = sim.process(drain())
        assert sim.run(until=proc) == b"A" * 100 + b"B" * 50

    def test_fully_stale_segment_reacked_not_redelivered(self, stacks):
        _sim, conn = self._established_receiver(stacks)
        self._inject(conn, 1, b"A" * 100)
        before = conn.bytes_received
        self._inject(conn, 1, b"A" * 100)  # exact duplicate
        self._inject(conn, 21, b"A" * 50)  # fully within delivered data
        assert conn.bytes_received == before
        assert conn.rcv_nxt == 101

    def test_overlapping_ooo_block_trimmed_on_pull(self, stacks):
        sim, conn = self._established_receiver(stacks)
        self._inject(conn, 1, b"A" * 100)    # in order: rcv_nxt -> 101
        self._inject(conn, 201, b"C" * 100)  # gap: buffered out of order
        self._inject(conn, 101, b"B" * 150)  # fills gap, overlaps C by 50
        assert conn.rcv_nxt == 301
        assert conn.bytes_received == 300
        assert not conn.ooo

        def drain():
            data = yield from conn.recv_bytes(300)
            return bytes(data)

        proc = sim.process(drain())
        assert sim.run(until=proc) == b"A" * 100 + b"B" * 150 + b"C" * 50

    def test_stale_ooo_block_dropped_on_pull(self, stacks):
        _sim, conn = self._established_receiver(stacks)
        self._inject(conn, 151, b"X" * 50)   # ooo block 151-201
        self._inject(conn, 1, b"A" * 250)    # covers it entirely
        assert conn.rcv_nxt == 251
        assert conn.bytes_received == 250    # stale block contributed nothing
        assert not conn.ooo
