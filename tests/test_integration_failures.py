"""End-to-end integration and failure-injection tests on the full deployment."""

import pytest

from repro.apps.workload import ClosedLoopClients
from repro.scenarios.rubis_cloud import FRONTEND_PORT, build_rubis_cloud


class TestFullDeploymentIntegration:
    def test_all_tiers_see_traffic(self):
        dep = build_rubis_cloud(seed=4, security="hip", hip_rsa_bits=512)
        sim = dep.sim
        workload = ClosedLoopClients(
            dep.client_node, dep.client_tcp, dep.frontend_addr, FRONTEND_PORT,
            n_clients=4, rng=dep.rngs.stream("w"), warmup=0.5,
        )
        done = sim.process(workload.run(2.0))
        result = sim.run(until=done)
        assert result.successes > 5
        # Every web VM served something (round-robin) and the DB saw queries.
        assert all(ws.stats.responses > 0 for ws in dep.web_servers)
        assert dep.db_server.stats.queries > 0
        # HIP associations exist on every secured hop.
        lb_daemon = dep.daemons["loadbalancer"]
        assert sum(1 for a in lb_daemon.assocs.values() if a.is_established) == 3
        db_daemon = dep.daemons["db0"]
        assert sum(1 for a in db_daemon.assocs.values() if a.is_established) == 3

    def test_no_plaintext_inside_cloud_in_hip_mode(self):
        """All traffic crossing the cloud gateway is HIP or ESP."""
        dep = build_rubis_cloud(seed=4, security="hip", hip_rsa_bits=512)
        sim = dep.sim
        protocols = set()
        # Spy on the LB's WAN link (LB <-> internet); web/db traffic crosses it.
        endpoint = dep.lb_node.interfaces[0]._endpoint
        original = endpoint.send

        def spy(packet):
            from repro.net.packet import IPHeader

            ip = packet.outer
            if isinstance(ip, IPHeader) and str(ip.dst).startswith("10."):
                protocols.add(ip.proto)
            return original(packet)

        endpoint.send = spy
        workload = ClosedLoopClients(
            dep.client_node, dep.client_tcp, dep.frontend_addr, FRONTEND_PORT,
            n_clients=3, rng=dep.rngs.stream("w"), warmup=0.5,
        )
        done = sim.process(workload.run(1.5))
        sim.run(until=done)
        assert protocols  # something crossed
        assert protocols <= {"hip", "esp"}, protocols

    def test_web_vm_failure_and_service_continuity(self):
        """Killing one web VM degrades but does not stop the service."""
        dep = build_rubis_cloud(seed=4, security="basic", hip_rsa_bits=512)
        sim = dep.sim
        workload = ClosedLoopClients(
            dep.client_node, dep.client_tcp, dep.frontend_addr, FRONTEND_PORT,
            n_clients=6, rng=dep.rngs.stream("w"), warmup=0.5, timeout=1.0,
        )

        def saboteur():
            yield sim.timeout(2.0)
            # Sever the victim's virtio link: packets to it fall into the void.
            victim = dep.web_vms[0]
            for iface in victim.interfaces:
                if iface._endpoint is not None:
                    iface._endpoint.peer = None
            victim.state = "terminated"

        sim.process(saboteur())
        done = sim.process(workload.run(5.0))
        result = sim.run(until=done)
        # Some requests to the dead backend fail, but the service survives
        # and the two remaining web servers keep answering.
        assert result.failures > 0
        assert result.successes > 50
        live = [ws for ws, vm in zip(dep.web_servers, dep.web_vms)
                if vm.state == "running"]
        assert all(ws.stats.responses > 0 for ws in live)

    def test_deterministic_replay_full_stack(self):
        """Two identical runs of the full HIP deployment match exactly."""
        def run_once():
            dep = build_rubis_cloud(seed=99, security="hip", hip_rsa_bits=512)
            sim = dep.sim
            workload = ClosedLoopClients(
                dep.client_node, dep.client_tcp, dep.frontend_addr,
                FRONTEND_PORT, n_clients=3, rng=dep.rngs.stream("w"),
                warmup=0.5,
            )
            done = sim.process(workload.run(1.5))
            result = sim.run(until=done)
            return (result.successes,
                    tuple(round(s.latency, 12) for s in result.samples))

        assert run_once() == run_once()

    def test_client_side_hip_end_to_end(self):
        """§VII: clients themselves speak HIP to the LB (Chromium/Silk case)."""
        import random

        from repro.hip.daemon import HipConfig, HipDaemon
        from repro.hip.identity import HostIdentity

        dep = build_rubis_cloud(seed=4, security="hip", hip_rsa_bits=512)
        sim = dep.sim
        gen = random.Random(77)
        client_daemon = HipDaemon(
            dep.client_node, HostIdentity.generate(gen, "rsa", rsa_bits=512),
            rng=random.Random(1), config=HipConfig(real_crypto=False),
        )
        lb_daemon = dep.daemons["loadbalancer"]
        client_daemon.add_peer(lb_daemon.hit, [dep.frontend_addr])
        lb_daemon.add_peer(client_daemon.hit, [dep.client_node.addresses(4)[0]])

        workload = ClosedLoopClients(
            dep.client_node, dep.client_tcp, lb_daemon.hit, FRONTEND_PORT,
            n_clients=2, rng=dep.rngs.stream("w"), warmup=0.5, timeout=10.0,
        )
        done = sim.process(workload.run(2.0))
        result = sim.run(until=done)
        assert result.successes > 3
        # The consumer hop really ran over ESP.
        assert client_daemon.data_packets_sent > 0
