"""Stream adapters, buffered reading and HTTP framing tests."""

import pytest

from repro.apps.http import (
    HttpError,
    HttpRequest,
    HttpResponse,
    read_request,
    read_response,
    write_request,
    write_response,
)
from repro.apps.streams import BufferedReader, PlainStream, StreamClosed, wrap_stream
from repro.net.addresses import ipv4
from repro.net.packet import VirtualPayload
from repro.net.tcp import TcpStack
from repro.net.topology import lan_pair

B = ipv4("10.0.0.2")


@pytest.fixture
def pipe(sim):
    """An established TCP connection pair wrapped as streams."""
    a, b = lan_pair(sim, "a", "b")
    ta, tb = TcpStack(a), TcpStack(b)
    conns = {}

    def server():
        listener = tb.listen(80)
        conns["server"] = yield listener.accept()

    def client():
        conns["client"] = yield sim.process(ta.open_connection(B, 80))

    sim.process(server())
    proc = sim.process(client())
    sim.run(until=proc)
    sim.run(until=sim.now + 0.1)
    return sim, PlainStream(conns["client"]), PlainStream(conns["server"])


class TestBufferedReader:
    def test_read_until_across_chunks(self, pipe):
        sim, cli, srv = pipe
        reader = BufferedReader(srv)
        out = {}

        def sender():
            yield from cli.send(b"GET / HT")
            yield from cli.send(b"TP/1.1\r\n\r\nrest")

        def receiver():
            out["head"] = yield from reader.read_until(b"\r\n\r\n")
            out["rest"] = yield from reader.read_exactly(4)

        sim.process(sender())
        sim.process(receiver())
        sim.run(until=sim.now + 5)
        assert out["head"] == b"GET / HTTP/1.1\r\n\r\n"
        assert out["rest"] == b"rest"

    def test_read_until_limit(self, pipe):
        sim, cli, srv = pipe
        reader = BufferedReader(srv)
        out = {}

        def sender():
            for _ in range(30):
                yield from cli.send(b"x" * 1000)

        def receiver():
            try:
                yield from reader.read_until(b"\r\n\r\n", max_bytes=5000)
            except ValueError as exc:
                out["err"] = str(exc)

        sim.process(sender())
        sim.process(receiver())
        sim.run(until=sim.now + 5)
        assert "delimiter" in out["err"]

    def test_read_exactly_mixed_virtual(self, pipe):
        sim, cli, srv = pipe
        reader = BufferedReader(srv)
        out = {}

        def sender():
            yield from cli.send(b"abcd")
            yield from cli.send(VirtualPayload(100))
            yield from cli.send(b"wxyz")

        def receiver():
            out["first"] = yield from reader.read_exactly(4)
            out["mid"] = yield from reader.read_exactly(100)
            out["last"] = yield from reader.read_exactly(4)

        sim.process(sender())
        sim.process(receiver())
        sim.run(until=sim.now + 5)
        assert out["first"] == b"abcd"
        assert isinstance(out["mid"], VirtualPayload)
        assert out["last"] == b"wxyz"

    def test_virtual_in_delimiter_scan_rejected(self, pipe):
        sim, cli, srv = pipe
        reader = BufferedReader(srv)
        out = {}

        def sender():
            yield from cli.send(VirtualPayload(50))

        def receiver():
            try:
                yield from reader.read_until(b"\r\n")
            except ValueError as exc:
                out["err"] = str(exc)

        sim.process(sender())
        sim.process(receiver())
        sim.run(until=sim.now + 5)
        assert "virtual" in out["err"]

    def test_stream_closed_raises(self, pipe):
        sim, cli, srv = pipe
        reader = BufferedReader(srv)
        out = {}

        def closer():
            cli.close()
            return
            yield

        def receiver():
            try:
                yield from reader.read_exactly(10)
            except StreamClosed:
                out["closed"] = True

        sim.process(closer())
        sim.process(receiver())
        sim.run(until=sim.now + 5)
        assert out.get("closed") is True

    def test_wrap_stream_dispatch(self, pipe):
        _sim, cli, _srv = pipe
        assert isinstance(wrap_stream(cli.conn), PlainStream)
        with pytest.raises(TypeError):
            wrap_stream(object())


class TestHttpMessages:
    def test_request_head_bytes(self):
        req = HttpRequest(method="GET", path="/item?id=7",
                          headers={"Host": "shop"})
        raw = req.head_bytes()
        assert raw.startswith(b"GET /item?id=7 HTTP/1.1\r\n")
        assert b"Host: shop\r\n" in raw
        assert b"Content-Length: 0" in raw
        assert raw.endswith(b"\r\n\r\n")

    def test_response_head_includes_body_length(self):
        resp = HttpResponse(status=200, body=VirtualPayload(1234))
        assert b"Content-Length: 1234" in resp.head_bytes()

    def test_request_roundtrip_over_stream(self, pipe):
        sim, cli, srv = pipe
        reader = BufferedReader(srv)
        out = {}

        def sender():
            yield from write_request(
                cli, HttpRequest(method="POST", path="/bid",
                                 headers={"Host": "x"}, body=b"amount=10"),
            )

        def receiver():
            out["req"] = yield from read_request(reader)

        sim.process(sender())
        sim.process(receiver())
        sim.run(until=sim.now + 5)
        req = out["req"]
        assert (req.method, req.path) == ("POST", "/bid")
        assert req.body == b"amount=10"

    def test_response_roundtrip_with_virtual_body(self, pipe):
        sim, cli, srv = pipe
        reader = BufferedReader(cli)
        out = {}

        def sender():
            yield from write_response(
                srv, HttpResponse(status=200, headers={"Server": "sim"},
                                  body=VirtualPayload(8192)),
            )

        def receiver():
            out["resp"] = yield from read_response(reader)

        sim.process(sender())
        sim.process(receiver())
        sim.run(until=sim.now + 5)
        resp = out["resp"]
        assert resp.status == 200
        assert len(resp.body) == 8192

    def test_pipelined_requests_parse_in_order(self, pipe):
        sim, cli, srv = pipe
        reader = BufferedReader(srv)
        seen = []

        def sender():
            for i in range(3):
                yield from write_request(
                    cli, HttpRequest(method="GET", path=f"/page{i}"),
                )

        def receiver():
            for _ in range(3):
                req = yield from read_request(reader)
                seen.append(req.path)

        sim.process(sender())
        sim.process(receiver())
        sim.run(until=sim.now + 5)
        assert seen == ["/page0", "/page1", "/page2"]

    def test_malformed_head_raises(self, pipe):
        sim, cli, srv = pipe
        reader = BufferedReader(srv)
        out = {}

        def sender():
            yield from cli.send(b"NOT HTTP AT ALL\r\n\r\n")

        def receiver():
            try:
                yield from read_request(reader)
            except HttpError as exc:
                out["err"] = str(exc)

        sim.process(sender())
        sim.process(receiver())
        sim.run(until=sim.now + 5)
        assert "malformed" in out["err"]
