"""ECN congestion signals survive ESP / SSL-VPN encapsulation (RFC 6040).

A RED-style marking link sets the CE bit on the *outer* tunnel packet; the
decapsulating daemon must copy it to the rebuilt inner packet so the
tunneled TCP flow echoes ECE and reduces cwnd.  Without the copy, a
tunneled NewReno flow is blind to marking bottlenecks and only reacts to
tail drops.
"""

import random

from repro.crypto.rsa import RsaKeyPair
from repro.hip.daemon import HipDaemon
from repro.net.addresses import IPAddress, ipv4
from repro.net.packet import VirtualPayload
from repro.net.tcp import TcpStack
from repro.net.topology import lan_pair
from repro.tls.vpn import VPN_SUBNET, SslVpnDaemon

N_BYTES = 400_000
PORT = 8080

# A 10 Mbit/s bottleneck with an early marking threshold: the bulk flow's
# window overruns the queue and collects CE marks well before tail drop.
LINK_KW = dict(bandwidth_bps=10e6, delay_s=0.005, ecn_threshold=8)


def _run_bulk(sim, tcp_sender, tcp_receiver, dst_addr):
    """The receiver dials ``dst_addr`` and the accepting side pushes
    N_BYTES back; returns sender-side conn and delivered byte count."""
    out = {"conn": None, "received": 0}
    listener = tcp_sender.listen(PORT)

    def sender():
        conn = yield listener.accept()
        out["conn"] = conn
        conn.write(VirtualPayload(N_BYTES, tag="bulk"))

    def receiver():
        conn = yield sim.process(tcp_receiver.open_connection(dst_addr, PORT))
        while out["received"] < N_BYTES:
            chunk = yield conn.rx.get()
            if not chunk:
                break
            out["received"] += len(chunk)

    sim.process(sender())
    sim.process(receiver())
    sim.run(until=60)
    return out


def test_ce_mark_crosses_esp_tunnel(sim, session_identities):
    a, b = lan_pair(sim, "a", "b", **LINK_KW)
    da = HipDaemon(a, session_identities["a"], rng=random.Random(11))
    db = HipDaemon(b, session_identities["b"], rng=random.Random(22))
    da.add_peer(db.hit, [ipv4("10.0.0.2")])
    db.add_peer(da.hit, [ipv4("10.0.0.1")])
    ta, tb = TcpStack(a), TcpStack(b)
    # Receiver a dials b's LSI: the bulk data rides ESP b -> a through the
    # marking bottleneck, so CE lands on outer ESP packets only.
    out = _run_bulk(sim, tb, ta, da.lsi_for_peer(db.hit))
    assert out["received"] == N_BYTES
    assert out["conn"].ecn_reductions >= 1


def test_ce_mark_crosses_vpn_tunnel(sim):
    gen = random.Random(31)
    key_a, key_b = RsaKeyPair.generate(512, gen), RsaKeyPair.generate(512, gen)
    a, b = lan_pair(sim, "a", "b", **LINK_KW)

    def vpn_addr(n):
        return IPAddress(4, VPN_SUBNET.network.value + n)

    va = SslVpnDaemon(a, vpn_addr(10), key_a, rng=random.Random(1))
    vb = SslVpnDaemon(b, vpn_addr(11), key_b, rng=random.Random(2))
    va.add_peer(vpn_addr(11), ipv4("10.0.0.2"), key_b.public)
    vb.add_peer(vpn_addr(10), ipv4("10.0.0.1"), key_a.public)
    ta, tb = TcpStack(a), TcpStack(b)
    out = _run_bulk(sim, tb, ta, vpn_addr(11))
    assert out["received"] == N_BYTES
    assert out["conn"].ecn_reductions >= 1


def test_plain_flow_on_marking_link_also_reduces(sim):
    # Control: the same bottleneck without a tunnel marks the TCP packets
    # directly — the tunnel tests above must match this behaviour.
    a, b = lan_pair(sim, "a", "b", **LINK_KW)
    ta, tb = TcpStack(a), TcpStack(b)
    out = _run_bulk(sim, tb, ta, ipv4("10.0.0.2"))
    assert out["received"] == N_BYTES
    assert out["conn"].ecn_reductions >= 1
