"""NewReno fast recovery, SACK scoreboard, ECN echo, zero-window persist.

These tests drive one real :class:`TcpConnection` against a *scripted* peer:
a bare node whose ``tcp`` protocol handler records every segment and lets the
test inject hand-crafted ACKs (duplicate ACKs, SACK blocks, zero windows,
ECE/CWR).  That makes the sender-side state machine observable step by step
without a second stack's behaviour in the way.
"""

import pytest

from repro.net.addresses import ipv4, prefix
from repro.net.link import Link
from repro.net.node import Node
from repro.net.packet import Packet, TCPHeader
from repro.net.tcp import TcpError, TcpStack
from repro.net.topology import lan_pair

A, B = ipv4("10.0.0.1"), ipv4("10.0.0.2")
MSS = 100  # small segments keep sequence arithmetic readable


class FakePeer:
    """Scripted TCP endpoint: records inbound segments, sends crafted replies."""

    def __init__(self, sim, node, addr, remote):
        self.sim = sim
        self.node = node
        self.addr = addr
        self.remote = remote
        self.segments: list[tuple[TCPHeader, object]] = []
        node.register_protocol("tcp", self._on_packet)

    def _on_packet(self, node, packet, iface):
        tcp = packet.find(TCPHeader)
        self.segments.append((tcp, packet.payload))

    def reply(self, flags=("ACK",), seq=0, ack=0, window=65535, payload=b"",
              sack=()):
        client = self.segments[0][0]
        hdr = TCPHeader(
            src_port=80, dst_port=client.src_port, seq=seq, ack=ack,
            flags=frozenset(flags), window=window, sack=tuple(sack),
        )
        self.node.send_ip(self.remote, "tcp",
                          Packet(headers=(hdr,), payload=payload),
                          src=self.addr)

    def data_seqs(self):
        """Sequence numbers of every non-empty data segment seen, in order."""
        return [t.seq for t, p in self.segments if len(p)]


@pytest.fixture
def scripted(sim):
    """(conn, peer): an ESTABLISHED connection facing the scripted peer."""
    a, b = Node(sim, "a"), Node(sim, "b")
    link = Link(sim, bandwidth_bps=1e9, delay_s=1e-3)
    ia = a.add_interface("eth0", A)
    ib = b.add_interface("eth0", B)
    link.connect(ia, ib)
    a.routes.add(prefix("10.0.0.0/24"), ia)
    b.routes.add(prefix("10.0.0.0/24"), ib)
    ta = TcpStack(a)
    peer = FakePeer(sim, b, B, A)
    conn = ta.connect(B, 80, mss=MSS)
    sim.run(until=sim.now + 0.01)
    peer.reply(flags=("SYN", "ACK"), seq=0, ack=1)
    sim.run(until=sim.now + 0.01)
    assert conn.state == "ESTABLISHED"
    return conn, peer


def _settle(sim, dt=0.01):
    sim.run(until=sim.now + dt)


class TestDupAckClassification:
    """RFC 5681 §2: only payload-less, window-unchanged ACKs are duplicates."""

    def test_peer_data_segments_are_not_dup_acks(self, sim, scripted):
        conn, peer = scripted
        conn.cwnd = 10 * MSS
        conn.write(b"x" * 500)
        _settle(sim)
        assert conn.snd_nxt == 501
        # Peer sends its own data; each segment repeats ack == snd_una.
        for i in range(4):
            peer.reply(seq=1 + i, ack=1, payload=b"z")
            _settle(sim)
        assert conn.dup_acks == 0
        assert conn.segments_retransmitted == 0
        assert not conn.in_recovery

    def test_window_update_is_not_a_dup_ack(self, sim, scripted):
        conn, peer = scripted
        conn.cwnd = 10 * MSS
        conn.write(b"x" * 500)
        _settle(sim)
        for win in (60000, 50000, 40000):
            peer.reply(ack=1, window=win)
            _settle(sim)
        assert conn.dup_acks == 0
        assert conn.segments_retransmitted == 0

    def test_true_dup_acks_still_trigger_fast_retransmit(self, sim, scripted):
        conn, peer = scripted
        conn.cwnd = 10 * MSS
        conn.write(b"x" * 500)
        _settle(sim)
        for _ in range(3):
            peer.reply(ack=1)
            _settle(sim)
        assert conn.in_recovery
        assert conn.segments_retransmitted == 1
        # The retransmission is the head-of-line segment.
        assert peer.data_seqs().count(1) == 2


class TestNewRenoRecovery:
    def _fill(self, sim, conn, nbytes=1000):
        conn.cwnd = nbytes
        conn.write(b"x" * nbytes)
        _settle(sim)
        assert conn.snd_nxt == 1 + nbytes

    def test_enter_recovery_sets_state_and_inflates(self, sim, scripted):
        conn, peer = scripted
        self._fill(sim, conn)
        for _ in range(3):
            peer.reply(ack=1)
        _settle(sim)
        assert conn.in_recovery
        assert conn.recover == conn.snd_nxt
        assert conn.ssthresh == 500  # half of the 1000-byte flight
        assert conn.cwnd == conn.ssthresh + 3 * MSS
        assert conn.fast_recoveries == 1

    def test_dup_acks_in_recovery_inflate_cwnd(self, sim, scripted):
        conn, peer = scripted
        self._fill(sim, conn)
        for _ in range(3):
            peer.reply(ack=1)
        _settle(sim)
        inflated = conn.cwnd
        peer.reply(ack=1)
        _settle(sim)
        assert conn.cwnd == inflated + MSS

    def test_partial_ack_retransmits_next_hole_and_stays(self, sim, scripted):
        conn, peer = scripted
        self._fill(sim, conn)
        for _ in range(3):
            peer.reply(ack=1)
        _settle(sim)
        # Partial ACK: first segment arrived, hole at 101 remains.
        peer.reply(ack=101)
        _settle(sim)
        assert conn.in_recovery  # partial ACK does not exit recovery
        assert peer.data_seqs().count(101) == 2  # hole retransmitted at once
        assert conn.snd_una == 101

    def test_full_ack_deflates_and_exits(self, sim, scripted):
        conn, peer = scripted
        self._fill(sim, conn)
        for _ in range(3):
            peer.reply(ack=1)
        _settle(sim)
        recover = conn.recover
        peer.reply(ack=recover)
        _settle(sim)
        assert not conn.in_recovery
        assert conn.cwnd <= conn.ssthresh  # deflated, no lingering inflation
        assert conn.snd_una == recover


class TestSackScoreboard:
    def test_sack_blocks_populate_scoreboard(self, sim, scripted):
        conn, peer = scripted
        conn.cwnd = 1000
        conn.write(b"x" * 1000)
        _settle(sim)
        peer.reply(ack=1, sack=((101, 201), (301, 401)))
        _settle(sim)
        assert conn._sacked == [[101, 201], [301, 401]]
        peer.reply(ack=1, sack=((201, 301),))  # fills the gap -> one range
        _settle(sim)
        assert conn._sacked == [[101, 401]]

    def test_selective_retransmit_fills_known_holes(self, sim, scripted):
        conn, peer = scripted
        conn.cwnd = 1000
        conn.write(b"x" * 1000)
        _settle(sim)
        # Three dup ACKs SACKing 101-201: recovery, head (seq 1) retransmitted.
        for _ in range(3):
            peer.reply(ack=1, sack=((101, 201),))
        _settle(sim)
        assert conn.in_recovery
        assert peer.data_seqs().count(1) == 2
        # Further dup ACK SACKs 301-501: the 201-301 hole is now known-lost
        # (SACKed data above it) and must be selectively retransmitted.
        peer.reply(ack=1, sack=((101, 201), (301, 501)))
        _settle(sim)
        assert peer.data_seqs().count(201) == 2
        # Segment 101-201 was SACKed: never retransmitted.
        assert peer.data_seqs().count(101) == 1

    def test_unsacked_tail_above_sacked_data_not_retransmitted(self, sim, scripted):
        conn, peer = scripted
        conn.cwnd = 1000
        conn.write(b"x" * 1000)
        _settle(sim)
        for _ in range(3):
            peer.reply(ack=1, sack=((101, 201),))
        _settle(sim)
        # No SACKed data above 901: the tail is not known-lost, only the
        # head retransmission should have happened.
        assert peer.data_seqs().count(901) == 1

    def test_rto_clears_scoreboard(self, sim, scripted):
        conn, peer = scripted
        conn.cwnd = 1000
        conn.write(b"x" * 1000)
        _settle(sim)
        peer.reply(ack=1, sack=((101, 201),))
        _settle(sim)
        assert conn._sacked
        sim.run(until=sim.now + 3.0)  # let the RTO fire, no more ACKs
        assert conn._sacked == []  # receiver may renege: scoreboard dropped
        assert not conn.in_recovery

    def test_receiver_advertises_merged_ooo_ranges(self, sim, scripted):
        conn, peer = scripted
        # Deliver out-of-order data *to* the connection: 201-301 and 401-501.
        peer.reply(seq=201, ack=1, payload=b"a" * 100)
        peer.reply(seq=401, ack=1, payload=b"b" * 100)
        _settle(sim)
        sacks = [t.sack for t, _ in peer.segments if t.sack]
        assert sacks, "expected dup ACKs carrying SACK blocks"
        assert sacks[-1] == ((201, 301), (401, 501))


class TestEcn:
    def test_ce_mark_is_echoed_until_cwr(self, sim, scripted):
        conn, peer = scripted
        hdr = TCPHeader(src_port=80, dst_port=conn.local_port,
                        seq=1, ack=conn.snd_nxt, flags=frozenset({"ACK"}))
        conn._on_segment(hdr, b"", ce=True)
        assert conn._ecn_echo
        before = len(peer.segments)
        conn.write(b"q" * 10)
        _settle(sim)
        assert all("ECE" in t.flags for t, _ in peer.segments[before:])
        # Peer acknowledges the reduction with CWR: echo stops.
        cwr = TCPHeader(src_port=80, dst_port=conn.local_port,
                        seq=1, ack=conn.snd_nxt, flags=frozenset({"ACK", "CWR"}))
        conn._on_segment(cwr, b"")
        assert not conn._ecn_echo

    def test_ece_reduces_cwnd_once_per_window(self, sim, scripted):
        conn, peer = scripted
        conn.cwnd = 1000
        conn.write(b"x" * 1000)
        _settle(sim)
        peer.reply(flags=("ACK", "ECE"), ack=1)
        _settle(sim)
        assert conn.ecn_reductions == 1
        assert conn.cwnd == conn.ssthresh == 500
        assert conn._cwr_pending or any(
            "CWR" in t.flags for t, _ in peer.segments
        )
        # A second ECE within the same window must not reduce again.
        peer.reply(flags=("ACK", "ECE"), ack=101)
        _settle(sim)
        assert conn.ecn_reductions == 1

    def test_red_threshold_marks_and_sender_reduces(self, sim):
        """End to end: deep standing queue -> CE marks -> ECE echo -> cwnd cut."""
        a, b = lan_pair(sim, "a", "b", bandwidth_bps=5e6, delay_s=2e-3,
                        ecn_threshold=8)
        ta, tb = TcpStack(a), TcpStack(b)
        got = {}

        def server():
            listener = tb.listen(80)
            conn = yield listener.accept()
            got["data"] = yield from conn.recv_bytes(400_000)

        def client():
            conn = yield sim.process(ta.open_connection(B, 80))
            from repro.net.packet import VirtualPayload

            conn.write(VirtualPayload(400_000))
            got["conn"] = conn

        sim.process(server())
        sim.process(client())
        sim.run(until=60)
        assert len(got["data"]) == 400_000
        ep = a.interface("eth0")._endpoint
        assert ep.ecn_marks > 0
        assert got["conn"].ecn_reductions > 0
        # ECN kept the transfer loss-free: marks instead of overflow drops.
        assert got["conn"].segments_retransmitted == 0


class TestZeroWindowPersist:
    def test_no_transmission_into_closed_window(self, sim, scripted):
        conn, peer = scripted
        conn.write(b"x" * 500)  # cwnd 2*MSS: segments 1 and 101 leave
        _settle(sim)
        assert conn.snd_nxt == 201
        peer.reply(ack=201, window=0)  # acks everything, closes the window
        _settle(sim)
        assert conn.snd_nxt == 201  # old code would keep sending one MSS
        assert conn._persist_armed

    def test_probe_fires_and_window_reopen_resumes(self, sim, scripted):
        conn, peer = scripted
        conn.write(b"x" * 500)
        _settle(sim)
        peer.reply(ack=201, window=0)
        _settle(sim)
        sim.run(until=sim.now + 0.6)  # first persist backoff (0.5 s) elapses
        assert conn.zero_window_probes == 1
        assert conn.snd_nxt == 202  # exactly one probe byte past the edge
        # Probe response reopens the window: the stream resumes (ACK-clock
        # the rest out — cwnd collapsed while the window was closed).
        peer.reply(ack=202, window=65535)
        _settle(sim)
        assert not conn._persist_armed
        for _ in range(6):
            peer.reply(ack=conn.snd_nxt)
            _settle(sim)
        assert conn.snd_nxt == 501

    def test_probe_backoff_is_exponential(self, sim, scripted):
        conn, peer = scripted
        conn.write(b"x" * 500)
        _settle(sim)
        peer.reply(ack=201, window=0)
        _settle(sim)
        first = conn._persist_backoff
        sim.run(until=sim.now + first + 0.1)
        assert conn.zero_window_probes == 1
        assert conn._persist_backoff == first * 2

    def test_zero_window_stall_and_resume_end_to_end(self, sim):
        """Receiver closes its window mid-transfer, reopens later; the
        sender must stall (not blast into the closed window), probe, and
        complete the transfer once reopened."""
        a, b = lan_pair(sim, "a", "b")
        ta, tb = TcpStack(a), TcpStack(b)
        got = {}

        def server():
            listener = tb.listen(80)
            conn = yield listener.accept()
            first = yield conn.recv()
            total = len(first)
            conn.recv_window = 0  # advertise zero from the next ACK on
            yield sim.timeout(2.0)
            conn.recv_window = 65535
            while total < 100_000:
                chunk = yield conn.recv()
                total += len(chunk)
            got["total"] = total

        def client():
            conn = yield sim.process(ta.open_connection(B, 80))
            from repro.net.packet import VirtualPayload

            conn.write(VirtualPayload(100_000))
            got["conn"] = conn

        sim.process(server())
        sim.process(client())
        sim.run(until=60)
        assert got["total"] == 100_000
        assert got["conn"].zero_window_probes >= 1


class TestPacing:
    def test_paced_transfer_completes_and_spreads_segments(self, sim):
        a, b = lan_pair(sim, "a", "b", bandwidth_bps=1e9, delay_s=2e-3)
        ta, tb = TcpStack(a), TcpStack(b)
        got = {}

        def server():
            listener = tb.listen(80)
            conn = yield listener.accept()
            got["data"] = yield from conn.recv_bytes(200_000)

        def client():
            conn = yield sim.process(
                ta.open_connection(B, 80, pacing=True)
            )
            from repro.net.packet import VirtualPayload

            conn.write(VirtualPayload(200_000))
            got["conn"] = conn

        sim.process(server())
        sim.process(client())
        sim.run(until=60)
        assert len(got["data"]) == 200_000
        assert got["conn"].pacing

    def test_reno_mode_has_no_sack(self, sim, scripted):
        # The fixture conn is newreno; build a reno one alongside.
        conn, peer = scripted
        assert conn.sack_enabled
        reno = conn.stack.connect(B, 81, mss=MSS, cc="reno")
        assert not reno.sack_enabled
        with pytest.raises(ValueError):
            conn.stack.connect(B, 82, cc="vegas")
