"""Unit tests for the metrics registry, flight recorder and report module."""

import json
import math

import pytest

from repro.metrics import FlightRecorder, METRICS, MetricsRegistry, RECORDER
from repro.metrics.registry import HISTOGRAM_RESERVOIR
from repro.metrics.report import (
    SCHEMA_VERSION,
    metrics_json,
    render_report,
    write_json_report,
)


class TestRegistry:
    def test_counter_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("link.tx_packets")
        c.inc()
        c.inc(4)
        c.value += 1
        assert c.value == 6
        assert reg.counter("link.tx_packets") is c  # get-or-create

    def test_gauge_set(self):
        reg = MetricsRegistry()
        g = reg.gauge("sim.heap_depth")
        g.set(17.5)
        assert g.value == 17.5

    def test_cross_type_name_rejected(self):
        reg = MetricsRegistry()
        reg.counter("esp.drops")
        with pytest.raises(ValueError, match="another type"):
            reg.histogram("esp.drops")
        with pytest.raises(ValueError, match="another type"):
            reg.gauge("esp.drops")

    def test_bad_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("")
        with pytest.raises(ValueError):
            reg.counter(" padded ")

    def test_reset_zeroes_in_place(self):
        """Handles bound before a reset must stay live — the instrumented
        modules bind module-level handles exactly once, at import."""
        reg = MetricsRegistry()
        c = reg.counter("tcp.connects")
        h = reg.histogram("tcp.rtt_s")
        c.inc(9)
        h.observe(0.5)
        reg.reset()
        assert c.value == 0
        assert h.count == 0
        c.inc()
        h.observe(1.0)
        assert reg.counter("tcp.connects") is c
        assert reg.snapshot()["counters"]["tcp.connects"] == 1
        assert reg.snapshot()["histograms"]["tcp.rtt_s"]["count"] == 1

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("a.n").inc()
        reg.gauge("b.g").set(2.0)
        reg.histogram("c.h").observe(3.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"a.n": 1}
        assert snap["gauges"] == {"b.g": 2.0}
        assert snap["histograms"]["c.h"]["count"] == 1


class TestHistogram:
    def test_percentiles_interpolate(self):
        reg = MetricsRegistry()
        h = reg.histogram("t.lat")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.percentile(99) == pytest.approx(99.01)
        assert h.mean == pytest.approx(50.5)
        assert h.minimum == 1.0 and h.maximum == 100.0

    def test_single_observation(self):
        reg = MetricsRegistry()
        h = reg.histogram("t.one")
        h.observe(7.0)
        assert h.percentile(50) == 7.0
        assert h.percentile(99) == 7.0
        summary = h.summary()
        assert summary["count"] == 1 and summary["p95"] == 7.0

    def test_empty_summary_is_nan_not_crash(self):
        reg = MetricsRegistry()
        summary = reg.histogram("t.empty").summary()
        assert summary["count"] == 0
        assert math.isnan(summary["p50"])
        assert math.isnan(summary["mean"])

    def test_reservoir_bounds_memory_but_not_exact_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("t.big", capacity=10)
        for v in range(100):
            h.observe(float(v))
        assert h.count == 100  # exact
        assert h.maximum == 99.0  # exact
        assert len(h._values) == 10  # percentile reservoir is bounded
        # Deterministic first-N reservoir: percentiles reflect the first 10.
        assert h.percentile(100) == 9.0

    def test_default_capacity(self):
        reg = MetricsRegistry()
        assert reg.histogram("t.cap").capacity == HISTOGRAM_RESERVOIR

    def test_invalid_capacity(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("t.bad", capacity=0)


class TestFlightRecorder:
    def test_disabled_records_nothing(self):
        rec = FlightRecorder()
        rec.record(0.0, "link", "tx", bytes=100)
        assert len(rec) == 0
        assert rec.recorded == 0

    def test_record_and_filter(self):
        rec = FlightRecorder(enabled=True)
        rec.record(0.1, "link", "tx", bytes=100)
        rec.record(0.2, "tcp", "retransmit", kind="rto")
        rec.record(0.3, "link", "loss", bytes=100)
        assert len(rec) == 3
        assert [ev.event for ev in rec.events(layer="link")] == ["tx", "loss"]
        only = rec.events(layer="tcp", event="retransmit")
        assert len(only) == 1 and only[0].fields["kind"] == "rto"

    def test_ring_eviction_keeps_tally(self):
        rec = FlightRecorder(capacity=4, enabled=True)
        for i in range(10):
            rec.record(float(i), "link", "tx", n=i)
        assert len(rec) == 4
        assert rec.recorded == 10
        assert rec.dropped == 6
        assert [ev.fields["n"] for ev in rec.events()] == [6, 7, 8, 9]
        assert rec.tally() == {"link.tx": 10}  # survives eviction

    def test_enable_disable_clear(self):
        rec = FlightRecorder(enabled=True)
        rec.record(0.0, "sim", "step")
        rec.disable()
        rec.record(1.0, "sim", "step")
        assert rec.recorded == 1
        rec.clear()
        assert len(rec) == 0 and rec.recorded == 0 and rec.tally() == {}

    def test_enable_resizes_capacity(self):
        rec = FlightRecorder(capacity=8)
        rec.enable(capacity=2)
        rec.record(0.0, "a", "x")
        rec.record(0.0, "a", "y")
        rec.record(0.0, "a", "z")
        assert rec.capacity == 2
        assert [ev.event for ev in rec.events()] == ["y", "z"]

    def test_recording_context_restores_state(self):
        rec = FlightRecorder()
        with rec.recording():
            assert rec.enabled
            rec.record(0.0, "a", "x")
        assert not rec.enabled
        assert len(rec) == 1  # events kept, recording just stopped

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder().enable(capacity=-1)


class TestReport:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("link.tx_packets").inc(5)
        reg.counter("link.tx_bytes").inc(5000)
        reg.counter("tcp.connects").inc(2)
        reg.gauge("sim.depth").set(3.0)
        h = reg.histogram("tcp.rtt_s")
        for v in (0.01, 0.02, 0.03):
            h.observe(v)
        reg.histogram("proxy.request_s")  # empty, must serialize as nulls
        rec = FlightRecorder(enabled=True)
        rec.record(0.5, "hip", "bex_state", frm="I1-SENT", to="I2-SENT")
        return reg, rec

    def test_schema_and_layers(self):
        reg, rec = self._populated()
        payload = metrics_json(reg, rec, extra={"benchmark": "x"})
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["layers"]["link"] == {"tx_packets": 5, "tx_bytes": 5000}
        assert payload["layers"]["tcp"] == {"connects": 2}
        assert payload["counters"]["link.tx_packets"] == 5
        assert payload["extra"] == {"benchmark": "x"}
        assert payload["flight_recorder"]["by_event"] == {"hip.bex_state": 1}
        assert payload["trace"] == [
            [0.5, "hip", "bex_state", {"frm": "I1-SENT", "to": "I2-SENT"}]
        ]

    def test_strict_json_no_nan(self):
        reg, rec = self._populated()
        text = json.dumps(metrics_json(reg, rec), allow_nan=False)
        parsed = json.loads(text)
        assert parsed["histograms"]["proxy.request_s"]["p50"] is None

    def test_write_json_report(self, tmp_path):
        reg, rec = self._populated()
        path = write_json_report(tmp_path / "run.metrics.json", reg, rec)
        parsed = json.loads(path.read_text())
        assert parsed["schema"] == SCHEMA_VERSION
        assert parsed["histograms"]["tcp.rtt_s"]["count"] == 3

    def test_render_report_text(self):
        reg, rec = self._populated()
        lines = render_report(reg, rec)
        text = "\n".join(lines)
        assert text.startswith("== metrics report ==")
        assert "tx_packets=5" in text
        assert "tcp.rtt_s: n=3" in text
        assert "hip.bex_state x1" in text
        assert "proxy.request_s" not in text  # empty histograms elided

    def test_defaults_to_global_singletons(self):
        import repro.net.link  # noqa: F401 — binds link.* counters

        # Smoke-check only: the globals accumulate across the test session.
        payload = metrics_json()
        assert payload["schema"] == SCHEMA_VERSION
        assert "link.tx_packets" in payload["counters"]


class TestGlobalSingletons:
    def test_instrumented_modules_share_the_registry(self):
        import repro.net.link as link_mod

        assert link_mod._TX_PACKETS is METRICS.counter("link.tx_packets")

    def test_global_recorder_disabled_by_default(self):
        assert RECORDER.enabled is False
