"""Tests for number theory, SHA, HMAC/KDF — with hypothesis cross-checks."""

import hashlib
import hmac as stdlib_hmac
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hmac_kdf import (
    hip_keymat,
    hkdf_expand,
    hkdf_extract,
    hmac_digest,
    tls_prf,
)
from repro.crypto.numtheory import (
    bytes_to_int,
    crt_pair,
    egcd,
    int_to_bytes,
    is_probable_prime,
    modinv,
    random_prime,
)
from repro.crypto.sha import sha1, sha256


class TestNumTheory:
    @given(st.integers(1, 10**9), st.integers(1, 10**9))
    def test_egcd_invariant(self, a, b):
        g, x, y = egcd(a, b)
        assert a * x + b * y == g
        assert a % g == 0 and b % g == 0

    @given(st.integers(2, 10**6))
    def test_modinv_roundtrip(self, m):
        a = 3
        while egcd(a % m, m)[0] != 1:
            a += 1
        inv = modinv(a, m)
        assert (a * inv) % m == 1

    def test_modinv_non_coprime_raises(self):
        with pytest.raises(ValueError):
            modinv(4, 8)

    def test_small_primes_recognized(self):
        primes = {2, 3, 5, 7, 11, 13, 17, 19, 23, 997, 7919}
        for p in primes:
            assert is_probable_prime(p), p
        for n in (0, 1, 4, 6, 9, 15, 998, 7917):
            assert not is_probable_prime(n), n

    def test_carmichael_numbers_rejected(self):
        # Classic Fermat pseudoprimes that Miller-Rabin must catch.
        for n in (561, 1105, 1729, 2465, 2821, 6601, 8911, 41041):
            assert not is_probable_prime(n), n

    def test_random_prime_bit_length(self, rng):
        for bits in (16, 64, 256):
            p = random_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_random_prime_too_small(self, rng):
        with pytest.raises(ValueError):
            random_prime(4, rng)

    def test_crt_pair(self):
        x = crt_pair(2, 3, 3, 5)
        assert x % 3 == 2 and x % 5 == 3

    @given(st.integers(0, 2**128 - 1))
    def test_int_bytes_roundtrip(self, n):
        assert bytes_to_int(int_to_bytes(n)) == n

    def test_int_to_bytes_fixed_length(self):
        assert int_to_bytes(1, 4) == b"\x00\x00\x00\x01"
        with pytest.raises(ValueError):
            int_to_bytes(-1)


class TestSha:
    def test_empty_vectors(self):
        assert sha1(b"").hex() == "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        assert (
            sha256(b"").hex()
            == "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_abc_vectors(self):
        assert sha1(b"abc").hex() == "a9993e364706816aba3e25717850c26c9cd0d89d"
        assert (
            sha256(b"abc").hex()
            == "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    @pytest.mark.parametrize("n", [0, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 1000])
    def test_padding_boundaries_match_hashlib(self, n):
        msg = bytes(range(256)) * 4
        msg = msg[:n]
        assert sha1(msg) == hashlib.sha1(msg).digest()
        assert sha256(msg) == hashlib.sha256(msg).digest()

    @given(st.binary(max_size=500))
    @settings(max_examples=60)
    def test_matches_hashlib(self, data):
        assert sha1(data) == hashlib.sha1(data).digest()
        assert sha256(data) == hashlib.sha256(data).digest()


class TestHmacKdf:
    @given(st.binary(max_size=100), st.binary(max_size=300))
    @settings(max_examples=40)
    def test_hmac_matches_stdlib(self, key, msg):
        assert hmac_digest(key, msg, "sha256") == stdlib_hmac.new(
            key, msg, hashlib.sha256
        ).digest()
        assert hmac_digest(key, msg, "sha1") == stdlib_hmac.new(
            key, msg, hashlib.sha1
        ).digest()

    def test_hmac_long_key_hashed(self):
        key = b"k" * 200  # longer than the block size
        assert hmac_digest(key, b"m") == stdlib_hmac.new(
            key, b"m", hashlib.sha256
        ).digest()

    def test_hmac_unknown_hash(self):
        with pytest.raises(ValueError):
            hmac_digest(b"k", b"m", "md5")

    def test_hkdf_rfc5869_case1(self):
        # RFC 5869 test case 1.
        ikm = bytes.fromhex("0b" * 22)
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        prk = hkdf_extract(salt, ikm)
        assert prk.hex() == (
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        )
        okm = hkdf_expand(prk, info, 42)
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_hkdf_expand_length_limit(self):
        with pytest.raises(ValueError):
            hkdf_expand(b"\x00" * 32, b"", 255 * 32 + 1)

    def test_hip_keymat_symmetric(self):
        """Initiator and responder derive identical KEYMAT."""
        secret, hit_a, hit_b = b"S" * 96, b"\x01" * 16, b"\x02" * 16
        assert hip_keymat(secret, hit_a, hit_b, 144) == hip_keymat(
            secret, hit_b, hit_a, 144
        )

    def test_hip_keymat_secret_sensitivity(self):
        hit_a, hit_b = b"\x01" * 16, b"\x02" * 16
        k1 = hip_keymat(b"x" * 96, hit_a, hit_b, 64)
        k2 = hip_keymat(b"y" * 96, hit_a, hit_b, 64)
        assert k1 != k2

    @given(st.integers(1, 300))
    @settings(max_examples=20)
    def test_hip_keymat_length_and_prefix(self, n):
        full = hip_keymat(b"s" * 32, b"\x01" * 16, b"\x02" * 16, 300)
        part = hip_keymat(b"s" * 32, b"\x01" * 16, b"\x02" * 16, n)
        assert len(part) == n
        assert full.startswith(part)

    def test_tls_prf_deterministic_and_expanding(self):
        a = tls_prf(b"secret", b"label", b"seed", 48)
        b = tls_prf(b"secret", b"label", b"seed", 48)
        c = tls_prf(b"secret", b"label", b"seeD", 48)
        assert a == b and a != c and len(a) == 48
