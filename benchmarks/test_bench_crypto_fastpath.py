"""Pytest wrapper around the crypto fast-path microbenchmark.

Runs :mod:`benchmarks.bench_crypto` with shortened repetitions and asserts a
conservative floor (2x) on the packet-transform speedup so CI catches a
fast-path regression without being flaky on loaded machines.  The committed
``BENCH_crypto.json`` is produced by the direct, longer run
(``python benchmarks/bench_crypto.py``, 5x acceptance target).
"""

from __future__ import annotations

from benchmarks.bench_crypto import run_bench, write_report

# Loaded shared CI runners can halve throughput; the direct run demonstrates
# the real >= 5x, this floor only guards against losing the fast path.
FLOOR = 2.0


def test_crypto_fastpath_speedup():
    report = run_bench(min_time=0.25, e2e_packets=50)
    write_report(report)
    results = report["results"]
    assert results["packet_transform_1400B"]["speedup"] >= FLOOR
    assert results["aes128_block_encrypt"]["speedup"] >= 1.5
    assert results["hmac_sha1_1400B"]["speedup"] >= 2.0
    assert results["esp_end_to_end_1400B"]["pkts_per_s"] > 0
