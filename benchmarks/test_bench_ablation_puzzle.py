"""Ablation (§II-B / §IV-B): the puzzle as a DoS-mitigation knob.

"The BEX also includes a computational puzzle that the server can use to
delay clients when it is under heavy load."  We sweep the difficulty K and
measure (a) the initiator's solving cost and the resulting BEX latency, and
(b) the responder-side verification cost, which must stay flat — that
asymmetry is the whole point.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import write_report
from repro.crypto.costmodel import CostModel
from repro.crypto.puzzle import Puzzle, expected_attempts, solve_puzzle
from repro.hip.daemon import HipConfig, HipDaemon
from repro.hip.identity import HostIdentity
from repro.net.addresses import ipv4
from repro.net.topology import lan_pair
from repro.sim import Simulator

A, B = ipv4("10.0.0.1"), ipv4("10.0.0.2")
K_SWEEP = (0, 4, 8, 12, 16)


def _bex_latency(ident_a, ident_b, k: int) -> tuple[float, float, float]:
    """Returns (bex_seconds, solve_cost_seconds, verify_cost_seconds)."""
    sim = Simulator()
    a, b = lan_pair(sim, "a", "b")
    cfg = HipConfig(puzzle_k=k, real_crypto=False)
    da = HipDaemon(a, ident_a, rng=random.Random(k + 1), config=cfg)
    db = HipDaemon(b, ident_b, rng=random.Random(k + 2), config=cfg)
    da.add_peer(db.hit, [B])
    db.add_peer(da.hit, [A])
    t0 = sim.now
    proc = sim.process(da.associate(db.hit, timeout=600.0))
    sim.run(until=proc)
    return (
        sim.now - t0,
        da.meter.seconds.get("puzzle.solve", 0.0),
        db.meter.seconds.get("puzzle.verify", 0.0),
    )


@pytest.mark.benchmark(group="ablation-puzzle")
def test_puzzle_difficulty_sweep(benchmark, bench_mode, report_dir):
    gen = random.Random(23)
    ident_a = HostIdentity.generate(gen, "rsa", rsa_bits=bench_mode["rsa_bits"])
    ident_b = HostIdentity.generate(gen, "rsa", rsa_bits=bench_mode["rsa_bits"])

    def run_all():
        return {k: _bex_latency(ident_a, ident_b, k) for k in K_SWEEP}

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = ["Ablation — puzzle difficulty K vs BEX latency and per-side cost",
             f"{'K':>3s} | {'BEX ms':>8s} | {'solve ms':>9s} | {'verify us':>9s} | "
             f"{'E[attempts]':>11s}"]
    for k, (bex, solve, verify) in rows.items():
        lines.append(
            f"{k:3d} | {bex * 1e3:8.2f} | {solve * 1e3:9.3f} | "
            f"{verify * 1e6:9.2f} | {expected_attempts(k):11.0f}"
        )
    write_report(report_dir, "ablation_puzzle", lines)

    # Initiator cost rises steeply with K...
    assert rows[16][1] > rows[4][1] * 50
    # ...BEX latency tracks it...
    assert rows[16][0] > rows[0][0]
    # ...while the responder's verification stays a single hash, flat in K.
    verify_costs = [rows[k][2] for k in K_SWEEP]
    assert max(verify_costs) < min(verify_costs) * 1.5 + 1e-9


@pytest.mark.benchmark(group="ablation-puzzle")
def test_attacker_work_factor(benchmark, report_dir):
    """Cost-model view: attacker connection-attempt cost vs responder cost."""
    cm = CostModel()

    def table():
        rows = []
        for k in K_SWEEP:
            attacker = cm.puzzle_solve_cost(k)
            responder = cm.puzzle_verify_cost()
            rows.append((k, attacker, responder, attacker / responder))
        return rows

    rows = benchmark.pedantic(table, rounds=1, iterations=1)
    lines = ["Ablation — modeled attacker/responder cost asymmetry",
             f"{'K':>3s} | {'attacker s':>12s} | {'responder s':>12s} | {'ratio':>10s}"]
    for k, att, resp, ratio in rows:
        lines.append(f"{k:3d} | {att:12.6f} | {resp:12.6f} | {ratio:10.1f}")
    write_report(report_dir, "ablation_puzzle_asymmetry", lines)
    assert rows[-1][3] > 10_000  # K=16: four orders of magnitude of asymmetry
