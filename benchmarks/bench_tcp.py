"""TCP congestion-control benchmark: NewReno+SACK vs the Reno baseline.

Bulk *simulated* goodput across a 1%-average-loss, 50 ms-RTT, 20 Mbit/s
link, once with the legacy Reno machine (``cc="reno"``: fast retransmit but
no recovery state, no SACK — every multi-loss window costs an RTO) and once
with NewReno+SACK (``cc="newreno"``: cwnd inflation/deflation, partial-ACK
retransmission, SACK-driven hole repair).  Written to ``BENCH_tcp.json`` at
the repo root.  Two loss regimes, both at the same 1% average rate:

* ``random`` — i.i.d. drops.  At 1% the loss-limited cwnd is ~12 packets,
  so windows almost never contain two losses and SACK is structurally idle;
  NewReno's edge is limited to avoiding Reno's occasional RTO (~1.2x).
  Reported for context, not scored.

* ``burst`` — drops arrive in runs of 3 (``loss_burst=3``), which is how
  drop-tail queues actually lose packets.  Multi-loss windows are now the
  norm: Reno must detect each hole with a fresh 3-dup-ACK round and usually
  starves into an RTO, while the SACK scoreboard repairs the whole run in
  one RTT.  This is the acceptance metric: goodput ratio >= 1.5x.

The ratio is measured in simulated time, so it is completely insensitive to
machine load.  Every variant runs in both engine modes and the simulated
results must agree bit-for-bit (the replay-digest tests prove full
event-trace equality).

Run directly::

    PYTHONPATH=src python benchmarks/bench_tcp.py            # full transfer
    PYTHONPATH=src python benchmarks/bench_tcp.py --quick    # CI smoke

Both modes enforce the same >= 1.5x floor — simulated goodput does not
degrade on loaded CI runners — and exit nonzero below it.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.apps.iperf import IPERF_PORT, IperfServer
from repro.metrics import METRICS
from repro.net.packet import VirtualPayload
from repro.net.tcp import TcpStack
from repro.net.topology import lan_pair
from repro.sim import RngStreams
from repro.sim.engine import Simulator

try:  # imported as a package (tests) or run as a script (CI / local)
    from benchmarks._provenance import provenance
except ImportError:  # pragma: no cover
    from _provenance import provenance

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

TARGET_RATIO = 1.5

LOSS_RATE = 0.01
BANDWIDTH_BPS = 20e6
DELAY_S = 0.025  # per direction -> 50 ms RTT
SEED = 2024


def _run_transfer(cc: str, n_bytes: int, fast: bool, loss_burst: int) -> dict:
    """One seeded lossy-link transfer; returns simulated-goodput stats."""
    sim = Simulator(fast_path=fast)
    rngs = RngStreams(SEED)
    node_a, node_b = lan_pair(
        sim, bandwidth_bps=BANDWIDTH_BPS, delay_s=DELAY_S,
        loss_rate=LOSS_RATE, loss_rng=rngs.stream("loss"),
        loss_burst=loss_burst,
    )
    tcp_a, tcp_b = TcpStack(node_a), TcpStack(node_b)
    box: dict = {}

    def main():
        server = IperfServer(tcp_b, port=IPERF_PORT)
        measurement = sim.process(server.measure_once())
        conn = yield sim.process(
            tcp_a.open_connection(node_b.addresses()[0], IPERF_PORT, cc=cc)
        )
        conn.write(VirtualPayload(n_bytes, tag="bench"))
        conn.close()
        result = yield measurement
        box["result"] = result
        box["conn"] = conn

    done = sim.process(main(), name=f"bench-{cc}")
    start = time.perf_counter()
    sim.run(until=done)
    wall = time.perf_counter() - start
    sim.close()
    METRICS.reset()
    result, conn = box["result"], box["conn"]
    return {
        "cc": cc,
        "goodput_mbps": result.throughput_mbps,
        "sim_duration_s": result.duration,
        "segments_retransmitted": conn.segments_retransmitted,
        "fast_recoveries": conn.fast_recoveries,
        "rtos": conn.rtos,
        "wall_s": wall,
    }


def bench_goodput(n_bytes: int, loss_burst: int) -> dict:
    variants = {}
    for cc in ("reno", "newreno"):
        ref = _run_transfer(cc, n_bytes, fast=False, loss_burst=loss_burst)
        fast = _run_transfer(cc, n_bytes, fast=True, loss_burst=loss_burst)
        sim_keys = {k: v for k, v in ref.items() if k != "wall_s"}
        if sim_keys != {k: v for k, v in fast.items() if k != "wall_s"}:
            raise AssertionError(f"engine modes diverged for cc={cc!r}")
        fast["wall_s"] = min(ref["wall_s"], fast["wall_s"])
        variants[cc] = fast
    ratio = variants["newreno"]["goodput_mbps"] / variants["reno"]["goodput_mbps"]
    return {
        "transfer_bytes": n_bytes,
        "loss_rate": LOSS_RATE,
        "loss_burst": loss_burst,
        "bandwidth_mbps": BANDWIDTH_BPS / 1e6,
        "rtt_ms": 2 * DELAY_S * 1e3,
        "reno": variants["reno"],
        "newreno": variants["newreno"],
        "goodput_ratio": ratio,
    }


def run_bench(quick: bool = False) -> dict:
    n_bytes = 500_000 if quick else 2_000_000
    random_loss = bench_goodput(n_bytes, loss_burst=1)
    burst_loss = bench_goodput(n_bytes, loss_burst=3)
    measured = burst_loss["goodput_ratio"]
    return {
        **provenance(),
        "mode": "quick" if quick else "full",
        "results": {"random_loss": random_loss, "burst_loss": burst_loss},
        "acceptance": {
            "metric": "burst_loss.goodput_ratio",
            "target_ratio": TARGET_RATIO,
            "measured_ratio": measured,
            "pass": measured >= TARGET_RATIO,
        },
    }


def write_report(report: dict) -> pathlib.Path:
    path = REPO_ROOT / "BENCH_tcp.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    report = run_bench(quick=quick)
    path = write_report(report)
    for regime in ("random_loss", "burst_loss"):
        g = report["results"][regime]
        for cc in ("reno", "newreno"):
            v = g[cc]
            print(f"{regime:>11} {cc:>8}: {v['goodput_mbps']:.2f} Mbit/s "
                  f"({v['segments_retransmitted']} rtx, "
                  f"{v['fast_recoveries']} fast recoveries, {v['rtos']} RTOs)")
        print(f"{regime:>11}    ratio: {g['goodput_ratio']:.2f}x")
    acc = report["acceptance"]
    print(f"acceptance: {acc['measured_ratio']:.2f}x vs {acc['target_ratio']}x "
          f"target -> {'PASS' if acc['pass'] else 'FAIL'}  (written to {path})")
    return 0 if acc["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
