"""Pytest wrappers around the sharded + fluid scale benchmark.

The quick test mirrors the CI bench-scale smoke job: small shard count,
short run, conservative 1.3x floor (the direct quick run demonstrates
~19x on an unloaded machine; this floor only guards against losing the
fluid fast path or the shard barrier).  The determinism section is held
to full strictness in both — a speedup with drift is a regression.

The full-scale run (thousands of VMs, a million sessions, ~half an hour)
is ``slow``-marked and opt-in::

    PYTHONPATH=src python -m pytest -m slow benchmarks/test_bench_scale.py
"""

from __future__ import annotations

import pytest

from benchmarks.bench_scale import (
    FULL_SESSION_FLOOR,
    FULL_TARGET,
    run_bench,
    write_report,
)

QUICK_FLOOR = 1.3


def test_scale_quick_smoke():
    report = run_bench(quick=True)
    write_report(report)
    assert report["results"]["determinism"]["ok"]
    assert report["acceptance"]["measured_speedup"] >= QUICK_FLOOR
    assert report["results"]["scale_run"]["errors"] == 0
    assert report["results"]["scale_run"]["fluid_byte_fraction"] > 0.5


@pytest.mark.slow
def test_scale_full_million_sessions():
    report = run_bench(quick=False)
    write_report(report)
    acc = report["acceptance"]
    assert acc["determinism_ok"]
    assert acc["measured_sessions"] >= FULL_SESSION_FLOOR
    assert acc["measured_speedup"] >= FULL_TARGET
    assert acc["pass"]
