"""Figure 3: iperf TCP throughput and ICMP RTT for six addressing modes.

Measured between two micro VMs inside the public cloud (which, like EC2 in
2012, has no native IPv6 — v6 connectivity rides Teredo):

    IPv4, HIT(IPv4), LSI(IPv4), Teredo, HIT(Teredo), LSI(Teredo)

Shape assertions, per the paper's text:
  * plain IPv4 has the highest throughput;
  * "LSI translation is slower than with HITs due to some extra processing
    overhead, while Teredo has the worst latency";
  * Teredo-based modes pay the userspace encapsulation tax on both axes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.scenarios.experiments import FIG3_MODES, Fig3Point, run_fig3

_results_cache: dict = {}


def _results(bench_mode) -> list[Fig3Point]:
    if "points" not in _results_cache:
        _results_cache["points"] = run_fig3(
            modes=FIG3_MODES,
            transfer_bytes=bench_mode["iperf_bytes"],
            ping_count=bench_mode["ping_count"],
            hip_rsa_bits=bench_mode["rsa_bits"],
            seed=42,
        )
    return _results_cache["points"]


@pytest.mark.benchmark(group="fig3")
def test_fig3_iperf_and_rtt(benchmark, bench_mode, report_dir):
    points = benchmark.pedantic(
        lambda: _results(bench_mode), rounds=1, iterations=1
    )
    by_mode = {p.mode: p for p in points}

    lines = ["Figure 3 — iperf throughput and ICMP RTT between two cloud VMs",
             f"{'mode':>12s} | {'Mbit/s':>8s} | {'RTT ms':>7s}"]
    for p in points:
        lines.append(f"{p.mode:>12s} | {p.throughput_mbps:8.1f} | {p.rtt_ms:7.3f}")
    write_report(report_dir, "fig3_iperf_rtt", lines)

    ipv4 = by_mode["ipv4"]
    hit4, lsi4 = by_mode["hit-ipv4"], by_mode["lsi-ipv4"]
    teredo = by_mode["teredo"]
    hit_t, lsi_t = by_mode["hit-teredo"], by_mode["lsi-teredo"]

    # --- throughput axis ---
    assert ipv4.throughput_mbps > hit4.throughput_mbps > lsi4.throughput_mbps
    assert lsi4.throughput_mbps > teredo.throughput_mbps
    assert teredo.throughput_mbps > hit_t.throughput_mbps >= lsi_t.throughput_mbps * 0.95
    # Teredo modes are far below native (userspace encapsulation).
    assert teredo.throughput_mbps < ipv4.throughput_mbps * 0.4

    # --- RTT axis ---
    assert ipv4.rtt_ms < hit4.rtt_ms < lsi4.rtt_ms
    assert lsi4.rtt_ms < teredo.rtt_ms  # "Teredo has the worst latency"
    assert teredo.rtt_ms < hit_t.rtt_ms < lsi_t.rtt_ms
    # The paper's Teredo bar sits around 4-5x the plain-IPv4 RTT.
    assert teredo.rtt_ms > ipv4.rtt_ms * 2.5
