"""Crypto fast-path microbenchmark: reference vs optimized primitives.

Measures the retained pre-optimization implementations
(:mod:`repro.crypto._reference`, ``AES._encrypt_block_ref``) against the
shipped T-table/batched/midstate fast path, and writes ``BENCH_crypto.json``
at the repo root.  The headline acceptance number is the full
AES-128-CBC + HMAC-SHA1-96 packet transform (IV derivation + encrypt + ICV)
on a 1400-byte payload, which must improve by >= 5x.

Run directly::

    PYTHONPATH=src python benchmarks/bench_crypto.py

or via the pytest wrapper ``benchmarks/test_bench_crypto_fastpath.py``
(which uses shorter repetitions and a conservative floor assertion).
"""

from __future__ import annotations

import json
import pathlib
import struct
import sys
import time

from repro.crypto._reference import cbc_encrypt_ref, hmac_digest_ref
from repro.crypto.aes import AES
from repro.crypto.hmac_kdf import HMAC_BACKEND, HmacKey
from repro.crypto.modes import cbc_encrypt
from repro.hip.esp import derive_sa_pair
from repro.net.addresses import ipv6
from repro.net.packet import IPHeader, Packet, TCPHeader

try:  # imported as a package (tests) or run as a script (CI / local)
    from benchmarks._provenance import provenance
except ImportError:  # pragma: no cover
    from _provenance import provenance

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
PAYLOAD_BYTES = 1400


def _rate(fn, *, min_time: float, min_iters: int = 3) -> float:
    """Calls/sec of ``fn``, running for at least ``min_time`` seconds."""
    fn()  # warm up (table/midstate construction, bytecode caches)
    iters = 0
    start = time.perf_counter()
    while True:
        fn()
        iters += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_time and iters >= min_iters:
            return iters / elapsed


def bench_aes_block(min_time: float) -> dict:
    aes = AES(bytes(range(16)))
    block = bytes(range(16, 32))
    ref = _rate(lambda: aes._encrypt_block_ref(block), min_time=min_time)
    opt = _rate(lambda: aes.encrypt_block(block), min_time=min_time)
    return {"ref_blocks_per_s": ref, "opt_blocks_per_s": opt, "speedup": opt / ref}


def bench_cbc(min_time: float) -> dict:
    aes = AES(bytes(range(16)))
    iv = bytes(16)
    payload = bytes(range(256)) * (PAYLOAD_BYTES // 256) + bytes(PAYLOAD_BYTES % 256)
    ref = _rate(lambda: cbc_encrypt_ref(aes, iv, payload), min_time=min_time)
    opt = _rate(lambda: cbc_encrypt(aes, iv, payload), min_time=min_time)
    return {"ref_pkts_per_s": ref, "opt_pkts_per_s": opt, "speedup": opt / ref}


def bench_hmac(min_time: float) -> dict:
    key = bytes(range(20))
    payload = bytes(PAYLOAD_BYTES)
    hk = HmacKey(key, "sha1")
    ref = _rate(lambda: hmac_digest_ref(key, payload, "sha1"), min_time=min_time)
    opt = _rate(lambda: hk.digest(payload), min_time=min_time)
    return {"ref_ops_per_s": ref, "opt_ops_per_s": opt, "speedup": opt / ref}


def bench_packet_transform(min_time: float) -> dict:
    """The ESP steady-state transform: IV HMAC + AES-128-CBC + HMAC-SHA1-96."""
    enc_key, auth_key = bytes(range(16)), bytes(range(20))
    aes = AES(enc_key)
    payload = bytes(range(256)) * (PAYLOAD_BYTES // 256) + bytes(PAYLOAD_BYTES % 256)
    spi, seq = 0x1000, 42

    def ref_transform():
        iv = hmac_digest_ref(enc_key, struct.pack(">IQ", spi, seq), "sha1")[:16]
        ct = cbc_encrypt_ref(aes, iv, payload)
        return hmac_digest_ref(auth_key, struct.pack(">II", spi, seq) + iv + ct, "sha1")[:12]

    iv_hmac = HmacKey(enc_key, "sha1")
    icv_hmac = HmacKey(auth_key, "sha1")

    def opt_transform():
        iv = iv_hmac.digest(struct.pack(">IQ", spi, seq))[:16]
        ct = cbc_encrypt(aes, iv, payload)
        return icv_hmac.digest(struct.pack(">II", spi, seq) + iv + ct)[:12]

    assert ref_transform() == opt_transform()  # byte-identical by construction
    ref = _rate(ref_transform, min_time=min_time)
    opt = _rate(opt_transform, min_time=min_time)
    return {"ref_pkts_per_s": ref, "opt_pkts_per_s": opt, "speedup": opt / ref}


def bench_esp_end_to_end(packets: int) -> dict:
    """Wall-clock for protect+verify of real payloads through the ESP stack."""
    hit_a, hit_b = ipv6("2001:10::a"), ipv6("2001:10::b")
    keymat = bytes(range(256)) * 2
    out_sa, _ = derive_sa_pair(keymat[:144], 0x10, 0x20, hit_a, hit_b, True)
    _, in_sa = derive_sa_pair(keymat[:144], 0x20, 0x10, hit_b, hit_a, False)
    inner = Packet(
        headers=(
            IPHeader(src=hit_a, dst=hit_b, proto="tcp"),
            TCPHeader(src_port=1000, dst_port=80, seq=5, ack=6),
        ),
        payload=bytes(PAYLOAD_BYTES),
    )
    out_sa.protect(inner)  # warm up
    start = time.perf_counter()
    for _ in range(packets):
        header, ct = out_sa.protect(inner)
        in_sa.verify(header, ct)
    wall = time.perf_counter() - start
    return {"packets": packets, "wall_clock_s": wall, "pkts_per_s": packets / wall}


def run_bench(min_time: float = 1.0, e2e_packets: int = 200) -> dict:
    results = {
        "aes128_block_encrypt": bench_aes_block(min_time),
        "cbc_encrypt_1400B": bench_cbc(min_time),
        "hmac_sha1_1400B": bench_hmac(min_time),
        "packet_transform_1400B": bench_packet_transform(min_time),
        "esp_end_to_end_1400B": bench_esp_end_to_end(e2e_packets),
    }
    measured = results["packet_transform_1400B"]["speedup"]
    return {
        **provenance(),
        "hmac_backend": HMAC_BACKEND,
        "payload_bytes": PAYLOAD_BYTES,
        "results": results,
        "acceptance": {
            "metric": "packet_transform_1400B.speedup",
            "target_speedup": 5.0,
            "measured_speedup": measured,
            "pass": measured >= 5.0,
        },
    }


def write_report(report: dict) -> pathlib.Path:
    path = REPO_ROOT / "BENCH_crypto.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def main() -> int:
    report = run_bench()
    path = write_report(report)
    for name, row in report["results"].items():
        if "speedup" in row:
            print(f"{name:28s} speedup {row['speedup']:6.2f}x")
        else:
            print(f"{name:28s} {row['pkts_per_s']:8.1f} pkt/s over {row['wall_clock_s']:.2f}s")
    acc = report["acceptance"]
    print(f"acceptance: {acc['measured_speedup']:.2f}x vs {acc['target_speedup']}x target "
          f"-> {'PASS' if acc['pass'] else 'FAIL'}  (written to {path})")
    return 0 if acc["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
