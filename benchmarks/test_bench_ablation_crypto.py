"""Ablation (§IV-B): asymmetric ops only at key exchange; ECC option.

Quantifies two design claims:

1. "Only the control plane employs intensive asymmetric key operations
   during the key exchange ... whereas the data plane utilizes light-weight
   symmetric keys" — we transfer increasing volumes over one association
   and show the asymmetric op count stays constant while symmetric time
   scales with bytes.
2. "The latest version of HIP supports also elliptic-curve cryptography
   that can curb the processing costs" — we compare BEX crypto seconds for
   RSA-1024/2048 vs ECDSA P-256 identities.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import write_report
from repro.crypto.costmodel import CostModel
from repro.hip.daemon import HipConfig, HipDaemon
from repro.hip.identity import HostIdentity
from repro.net.addresses import ipv4
from repro.net.packet import VirtualPayload
from repro.net.tcp import TcpStack
from repro.net.topology import lan_pair
from repro.sim import Simulator

A, B = ipv4("10.0.0.1"), ipv4("10.0.0.2")


def _transfer_over_hip(ident_a, ident_b, n_bytes: int):
    """One association + n_bytes bulk transfer; returns the initiator meter."""
    sim = Simulator()
    a, b = lan_pair(sim, "a", "b", bandwidth_bps=1e9)
    cfg = HipConfig(real_crypto=False)
    da = HipDaemon(a, ident_a, rng=random.Random(1), config=cfg)
    db = HipDaemon(b, ident_b, rng=random.Random(2), config=cfg)
    da.add_peer(db.hit, [B])
    db.add_peer(da.hit, [A])
    ta, tb = TcpStack(a), TcpStack(b)

    def server():
        listener = tb.listen(80)
        conn = yield listener.accept()
        yield from conn.recv_bytes(n_bytes)

    def client():
        conn = yield sim.process(ta.open_connection(db.hit, 80))
        conn.write(VirtualPayload(n_bytes))

    sim.process(server())
    sim.process(client())
    sim.run(until=300)
    return da.meter


@pytest.mark.benchmark(group="ablation-crypto")
def test_asymmetric_constant_symmetric_scales(benchmark, bench_mode, report_dir):
    gen = random.Random(7)
    ident_a = HostIdentity.generate(gen, "rsa", rsa_bits=bench_mode["rsa_bits"])
    ident_b = HostIdentity.generate(gen, "rsa", rsa_bits=bench_mode["rsa_bits"])
    volumes = [100_000, 1_000_000, 5_000_000]
    meters = benchmark.pedantic(
        lambda: [_transfer_over_hip(ident_a, ident_b, v) for v in volumes],
        rounds=1, iterations=1,
    )

    lines = ["Ablation — control-plane vs data-plane crypto cost per transfer",
             f"{'bytes':>10s} | {'asym ops':>8s} | {'asym s':>8s} | "
             f"{'sym ops':>8s} | {'sym s':>8s}"]
    rows = []
    for volume, meter in zip(volumes, meters):
        asym_ops = meter.total_ops("asym.")
        asym_s = meter.seconds_by("asym.")
        sym_ops = meter.total_ops("esp.")
        sym_s = meter.seconds_by("esp.")
        rows.append((volume, asym_ops, asym_s, sym_ops, sym_s))
        lines.append(f"{volume:10d} | {asym_ops:8d} | {asym_s:8.5f} | "
                     f"{sym_ops:8d} | {sym_s:8.5f}")
    write_report(report_dir, "ablation_crypto_split", lines)

    # Asymmetric op count is flat; symmetric time scales ~linearly with bytes.
    assert rows[0][1] == rows[1][1] == rows[2][1]
    assert rows[2][4] > rows[0][4] * 10
    # At 5 MB the symmetric work dominates the asymmetric handshake work for
    # 512/1024-bit identities only in op count — report both regardless.
    assert rows[2][3] > 100 * rows[2][1]


@pytest.mark.benchmark(group="ablation-crypto")
def test_ecdsa_curbs_control_plane_cost(benchmark, report_dir):
    cm = CostModel()

    def bex_cost(alg: str) -> float:
        """Asymmetric seconds for one full BEX with the given HI algorithm."""
        if alg.startswith("rsa"):
            bits = int(alg.split("-")[1])
            sign, verify = cm.rsa_sign(bits), cm.rsa_verify(bits)
        else:
            sign, verify = cm.ecdsa_sign_p256, cm.ecdsa_verify_p256
        dh = cm.dh_modexp(1536)
        # R1 sign amortized (precomputed pool) is excluded, as in hipd:
        # initiator: verify R1 + 2 DH + sign I2 + verify R2
        # responder: DH + verify I2 + sign R2
        initiator = verify + 2 * dh + sign + verify
        responder = dh + verify + sign
        return initiator + responder

    costs = {alg: bex_cost(alg) for alg in ("rsa-1024", "rsa-2048", "ecdsa-p256")}
    lines = ["Ablation — base-exchange asymmetric CPU by host-identity algorithm",
             f"{'algorithm':>12s} | {'BEX asym CPU (ms)':>18s}"]
    for alg, cost in costs.items():
        lines.append(f"{alg:>12s} | {cost * 1e3:18.2f}")
    write_report(report_dir, "ablation_ecc_control_plane", lines)

    # ECC beats RSA-2048 decisively and is competitive with RSA-1024,
    # with far better security margin — the paper's §IV-B point.
    assert costs["ecdsa-p256"] < costs["rsa-2048"] * 0.6
    assert costs["ecdsa-p256"] < costs["rsa-1024"] * 2.0
    benchmark.pedantic(lambda: bex_cost("ecdsa-p256"), rounds=1, iterations=1)
