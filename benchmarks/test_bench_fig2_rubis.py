"""Figure 2: RUBiS throughput vs concurrent clients for Basic / HIP / SSL.

Regenerates the paper's headline plot: closed-loop clients issuing random
GETs against the load-balanced three-VM web tier (no DB query cache),
measured as *successful requests per second*.

Shape assertions (the paper's qualitative claims):
  * Basic has the least overhead: highest curve at moderate/high load.
  * HIP is comparable to SSL, trending slightly lower (LSI translations).
  * Basic keeps growing to 50 clients while HIP/SSL flatten out
    (saturation — "a threshold beyond which the overall performance
    suffers").
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.scenarios.experiments import Fig2Point, run_fig2_point

MODES = ("basic", "hip", "ssl")


def _run_sweep(mode: str, cfg: dict) -> list[Fig2Point]:
    return [
        run_fig2_point(
            mode, n_clients=n, duration=cfg["fig2_duration"],
            warmup=cfg["fig2_warmup"], seed=42,
        )
        for n in cfg["fig2_clients"]
    ]


@pytest.mark.benchmark(group="fig2")
def test_fig2_throughput_comparison(benchmark, bench_mode, report_dir):
    results: dict[str, list[Fig2Point]] = {}

    def run_all():
        for mode in MODES:
            results[mode] = _run_sweep(mode, bench_mode)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    clients = bench_mode["fig2_clients"]
    lines = ["Figure 2 — RUBiS throughput (successful req/s) vs concurrent clients",
             "clients | " + " | ".join(f"{m:>7s}" for m in MODES)]
    for i, n in enumerate(clients):
        row = " | ".join(f"{results[m][i].throughput:7.1f}" for m in MODES)
        lines.append(f"{n:7d} | {row}")
    lines.append("")
    lines.append("failures: " + ", ".join(
        f"{m}={sum(p.failures for p in results[m])}" for m in MODES))
    write_report(report_dir, "fig2_rubis_throughput", lines)

    basic = results["basic"]
    hip = results["hip"]
    ssl = results["ssl"]
    high_load = range(len(clients))[-2:]  # the two largest client counts

    # Basic wins at high load.
    for i in high_load:
        assert basic[i].throughput > hip[i].throughput
        assert basic[i].throughput > ssl[i].throughput
    # HIP ~ SSL (within 15%), HIP not above SSL at the top load.
    top = len(clients) - 1
    assert hip[top].throughput == pytest.approx(ssl[top].throughput, rel=0.15)
    assert hip[top].throughput <= ssl[top].throughput * 1.05
    # Basic still climbing into 50 clients; secured modes flattened:
    # relative growth over the last step is clearly larger for basic.
    prev = len(clients) - 2
    basic_growth = basic[top].throughput / basic[prev].throughput
    hip_growth = hip[top].throughput / hip[prev].throughput
    ssl_growth = ssl[top].throughput / ssl[prev].throughput
    assert basic_growth > hip_growth
    assert basic_growth > ssl_growth
