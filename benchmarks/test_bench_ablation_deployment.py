"""Deployment ablations: client-side HIP (§VII) and LB balancing policy.

* **Client-side HIP** — the paper argues HIP "is also relevant at the client
  side" (Chromium OS / Amazon Silk, where one operator controls both ends).
  We measure consumer-perceived response time with the proxy terminating HIP
  (the paper's deployment) versus consumers speaking HIP end-to-end to the
  LB, quantifying what full deployment would cost the consumer hop.
* **Load-balancing policy** — HAProxy's round-robin (the paper's config) vs
  least-connections on the same workload.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import write_report
from repro.apps.workload import ClosedLoopClients
from repro.hip.daemon import HipConfig, HipDaemon
from repro.hip.identity import HostIdentity
from repro.scenarios.rubis_cloud import FRONTEND_PORT, build_rubis_cloud


def _measure(dep, frontend, n_clients, duration, warmup):
    sim = dep.sim
    workload = ClosedLoopClients(
        dep.client_node, dep.client_tcp, frontend, FRONTEND_PORT,
        n_clients=n_clients, rng=dep.rngs.stream("w"), warmup=warmup,
        timeout=10.0,
    )
    done = sim.process(workload.run(duration))
    result = sim.run(until=done)
    return result


@pytest.mark.benchmark(group="ablation-deployment")
def test_client_side_hip_vs_proxy_terminated(benchmark, bench_mode, report_dir):
    duration = bench_mode["fig2_duration"]
    warmup = bench_mode["fig2_warmup"]
    rsa_bits = bench_mode["rsa_bits"]
    out = {}

    def run_all():
        # Proxy-terminated (the paper's deployment): consumers speak plain HTTP.
        dep = build_rubis_cloud(seed=42, security="hip", hip_rsa_bits=rsa_bits)
        out["proxy"] = _measure(dep, dep.frontend_addr, 6, duration, warmup)

        # End-to-end: the consumer runs HIP and addresses the LB by HIT.
        dep2 = build_rubis_cloud(seed=42, security="hip", hip_rsa_bits=rsa_bits)
        gen = random.Random(7)
        client_daemon = HipDaemon(
            dep2.client_node, HostIdentity.generate(gen, "rsa", rsa_bits=rsa_bits),
            rng=random.Random(1), config=HipConfig(real_crypto=False),
        )
        lb_daemon = dep2.daemons["loadbalancer"]
        client_daemon.add_peer(lb_daemon.hit, [dep2.frontend_addr])
        lb_daemon.add_peer(client_daemon.hit, [dep2.client_node.addresses(4)[0]])
        out["e2e"] = _measure(dep2, lb_daemon.hit, 6, duration, warmup)
        return out

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = ["Ablation — consumer hop: proxy-terminated HIP vs end-to-end HIP",
             f"{'deployment':>16s} | {'req/s':>7s} | {'mean ms':>8s}"]
    for name, label in (("proxy", "proxy-terminated"), ("e2e", "client-side HIP")):
        r = out[name]
        lines.append(f"{label:>16s} | {r.throughput:7.1f} | "
                     f"{r.mean_latency() * 1e3:8.1f}")
    write_report(report_dir, "ablation_client_side_hip", lines)

    # End-to-end HIP costs the consumer a bit but works and stays same order.
    assert out["e2e"].successes > 0
    assert out["e2e"].mean_latency() >= out["proxy"].mean_latency() * 0.95
    assert out["e2e"].mean_latency() < out["proxy"].mean_latency() * 2.0


@pytest.mark.benchmark(group="ablation-deployment")
def test_lb_round_robin_vs_least_connections(benchmark, bench_mode, report_dir):
    duration = bench_mode["fig2_duration"]
    warmup = bench_mode["fig2_warmup"]
    out = {}

    def run_all():
        for algo in ("round-robin", "least-connections"):
            dep = build_rubis_cloud(seed=42, security="basic",
                                    hip_rsa_bits=bench_mode["rsa_bits"])
            dep.lb.algorithm = algo
            out[algo] = _measure(dep, dep.frontend_addr, 20, duration, warmup)
        return out

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = ["Ablation — load-balancing policy at 20 concurrent clients",
             f"{'policy':>18s} | {'req/s':>7s} | {'mean ms':>8s}"]
    for algo, r in out.items():
        lines.append(f"{algo:>18s} | {r.throughput:7.1f} | "
                     f"{r.mean_latency() * 1e3:8.1f}")
    write_report(report_dir, "ablation_lb_policy", lines)

    rr = out["round-robin"].throughput
    lc = out["least-connections"].throughput
    # With homogeneous backends the two are close (the paper's round-robin
    # choice was not a bottleneck); least-connections must not collapse.
    assert lc == pytest.approx(rr, rel=0.25)
