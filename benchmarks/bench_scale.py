"""Scale benchmark: million-session RUBiS on the sharded + fluid substrate.

The headline run partitions the scale scenario (one availability zone per
shard, thousands of VMs) across multiprocessing shard workers under the
conservative-lookahead barrier, with the media tier in fluid fast-forward
mode.  The baseline is the single-shard per-packet reference: the same
topology built monolithically with ``fluid=False``, timed over a short
slice (running it to a million sessions would take hours — which is the
point).  The acceptance metric is the ratio of *sessions completed per
wall-clock second*; the sim-time session rates of the two builds agree to
within noise, so the ratio isolates simulator speed.

Before measuring, a determinism section reruns a small configuration four
ways — inline shards, process shards, inline shards on the reference
engine, and the monolithic twin — and insists on bit-identical boundary
digests and per-zone results.  A fast simulator that drifts from the
reference is worthless, so a determinism failure fails the benchmark
regardless of speedup.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py          # full (~30-40 min)
    PYTHONPATH=src python benchmarks/bench_scale.py --quick  # CI smoke (~2 min)

Writes ``BENCH_scale.json`` at the repo root; exits non-zero if acceptance
fails.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import sys
import time

from repro.scenarios.rubis_scale import (
    ScaleParams,
    build_scale_monolithic,
    plan_fleet,
    scale_builders,
)
from repro.sim.shard import ShardedSimulation

try:  # imported as a package (tests) or run as a script (CI / local)
    from benchmarks._provenance import provenance
except ImportError:  # pragma: no cover
    from _provenance import provenance

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

SEED = 20120917

FULL_TARGET = 4.0  # speedup floor, sharded+fluid vs single-shard packet
QUICK_FLOOR = 1.5  # relaxed floor for the CI smoke configuration
FULL_SESSION_FLOOR = 1_000_000
QUICK_SESSION_FLOOR = 200

#: Parallel-vs-inline wall-clock floors for the scatter-gather coordinator.
#: Enforced only when the host has at least one core per shard worker —
#: process workers cannot beat the inline loop on a single-core box, so the
#: section records ``hardware_limited`` and skips the floor there (the CI
#: runners have 4 cores).
FULL_PARALLEL_TARGET = 2.5
QUICK_PARALLEL_FLOOR = 1.0
#: Sim-time slice for the full-deployment parallel-vs-inline comparison
#: (running the inline twin to a million sessions would double the bench).
PARALLEL_SLICE_SIM_S = 60.0

#: The headline configuration: 4 zones x (32 consumers, 2 web, db, media,
#: 520 idle multi-tenant micros on a 4x4 plant) = 2096 VMs, plus 8
#: three-member gossip fleets placed shard-aware (affinity).
FULL_PARAMS = ScaleParams(
    n_zones=4, n_clients=32, n_web=2, n_filler_vms=520,
    n_racks=4, hosts_per_rack=4, media_prob=0.02, media_window=65536,
    n_fleets=8, fleet_size=3, fleet_placement="affinity",
)
FULL_SIM_S = 470.0
FULL_BASELINE_SIM_S = 3.0

QUICK_PARAMS = ScaleParams(
    n_zones=2, n_clients=3, n_web=2, n_filler_vms=6,
    n_racks=1, hosts_per_rack=2, media_prob=0.1, media_window=65536,
    n_fleets=2, fleet_size=3, fleet_placement="affinity",
)
QUICK_SIM_S = 8.0
QUICK_BASELINE_SIM_S = 8.0

#: Tiny configuration for the determinism cross-check (run four ways).
SMOKE_PARAMS = ScaleParams(
    n_zones=2, n_clients=2, n_web=1, n_filler_vms=2,
    n_racks=1, hosts_per_rack=2, media_prob=0.25, media_window=65536,
    n_fleets=2, fleet_size=3, fleet_placement="affinity",
)
SMOKE_SIM_S = 6.0

_STAT_KEYS = (
    "sessions", "api_sessions", "media_sessions", "media_bytes",
    "fluid_bytes", "fluid_enters", "fluid_exits", "errors",
    "heartbeats_sent", "heartbeats_recv", "fleet_sent", "fleet_recv",
)


def n_vms(p: ScaleParams) -> int:
    return p.n_zones * (p.n_web + 2 + p.n_filler_vms)


def _totals(per_zone: dict) -> dict:
    return {k: sum(z[k] for z in per_zone.values()) for k in _STAT_KEYS}


def bench_scale_run(
    p: ScaleParams, sim_s: float, parallel: bool = True, adaptive: bool = True
) -> dict:
    """The measured configuration: sharded, process workers, fluid media."""
    start = time.perf_counter()
    sharded = ShardedSimulation(
        scale_builders(p), SEED, parallel=parallel, adaptive=adaptive
    )
    build_wall = time.perf_counter() - start
    start = time.perf_counter()
    per_zone = sharded.run(sim_s)
    wall = time.perf_counter() - start
    tot = _totals(per_zone)
    return {
        "n_vms": n_vms(p),
        "n_zones": p.n_zones,
        "parallel": parallel,
        "adaptive": adaptive,
        "sim_s": sim_s,
        "build_wall_s": build_wall,
        "wall_clock_s": wall,
        "windows": sharded.windows,
        "envelopes_routed": sharded.envelopes_routed,
        "boundary_digest": sharded.boundary_digest,
        "sessions_per_sim_s": tot["sessions"] / sim_s,
        "sessions_per_wall_s": tot["sessions"] / wall,
        "fluid_byte_fraction": (
            tot["fluid_bytes"] / tot["media_bytes"] if tot["media_bytes"] else 0.0
        ),
        "sync": sharded.sync_stats(),
        **tot,
        "per_zone": per_zone,
    }


def bench_baseline_slice(p: ScaleParams, sim_s: float) -> dict:
    """Single-shard per-packet reference over a short slice."""
    packet_p = dataclasses.replace(p, fluid=False)
    sim, zones = build_scale_monolithic(SEED, packet_p)
    start = time.perf_counter()
    sim.run(until=sim_s)
    wall = time.perf_counter() - start
    sessions = sum(z.stats.sessions for z in zones)
    errors = sum(z.stats.errors for z in zones)
    sim.close()
    return {
        "n_vms": n_vms(p),
        "sim_s": sim_s,
        "wall_clock_s": wall,
        "sessions": sessions,
        "errors": errors,
        "sessions_per_sim_s": sessions / sim_s,
        "sessions_per_wall_s": sessions / wall,
    }


def bench_parallel_section(p: ScaleParams, sim_s: float, target: float) -> dict:
    """Inline vs process-worker wall-clock on the same deployment.

    Both runs use the adaptive scatter-gather coordinator; the digests must
    agree bit-for-bit.  The speedup floor is enforced only when the host
    has a core per shard worker (``hardware_limited`` otherwise), because
    process workers cannot outrun the inline loop without real parallelism.
    """
    inline = bench_scale_run(p, sim_s, parallel=False)
    par = bench_scale_run(p, sim_s, parallel=True)
    for run in (inline, par):
        run.pop("per_zone")  # headline run carries the per-zone detail
    speedup = inline["wall_clock_s"] / par["wall_clock_s"]
    cpu_count = os.cpu_count() or 1
    hardware_limited = cpu_count < p.n_zones
    digests_match = inline["boundary_digest"] == par["boundary_digest"]
    # Adaptive-lookahead schedule check on the smoke config: stretching
    # windows must never change the digest, and can only reduce the count.
    static = bench_scale_run(SMOKE_PARAMS, SMOKE_SIM_S, parallel=False,
                             adaptive=False)
    adaptive = bench_scale_run(SMOKE_PARAMS, SMOKE_SIM_S, parallel=False)
    adaptive_ok = (
        adaptive["windows"] <= static["windows"]
        and adaptive["boundary_digest"] == static["boundary_digest"]
    )
    return {
        "n_shards": p.n_zones,
        "sim_s": sim_s,
        "cpu_count": cpu_count,
        "hardware_limited": hardware_limited,
        "target_speedup": target,
        "measured_speedup": speedup,
        "digests_match": digests_match,
        "inline": inline,
        "process": par,
        "adaptive_vs_static": {
            "static_windows": static["windows"],
            "adaptive_windows": adaptive["windows"],
            "stretched_windows": adaptive["sync"]["stretched_windows"],
            "digests_match": adaptive["boundary_digest"]
            == static["boundary_digest"],
            "ok": adaptive_ok,
        },
        "ok": (
            digests_match
            and adaptive_ok
            and (hardware_limited or speedup >= target)
        ),
    }


def bench_placement(p: ScaleParams) -> dict:
    """Shard-aware fleet placement quality: affinity vs scatter plans."""
    affinity = plan_fleet(dataclasses.replace(p, fleet_placement="affinity"))
    scatter = plan_fleet(dataclasses.replace(p, fleet_placement="scatter"))
    if affinity is None or scatter is None:
        return {"n_fleets": p.n_fleets, "enabled": False}
    reduction = (
        1.0 - affinity.quality["cross_weight_fraction"]
        / scatter.quality["cross_weight_fraction"]
        if scatter.quality["cross_weight_fraction"]
        else 0.0
    )
    return {
        "n_fleets": p.n_fleets,
        "fleet_size": p.fleet_size,
        "enabled": True,
        "affinity": affinity.quality,
        "scatter": scatter.quality,
        "cross_traffic_reduction": reduction,
        "ok": (
            affinity.quality["cross_weight_fraction"]
            <= scatter.quality["cross_weight_fraction"]
        ),
    }


def check_determinism() -> dict:
    """Small config, four ways: every boundary digest and per-zone result
    must agree bit-for-bit (shards vs processes vs reference engine vs the
    monolithic twin)."""
    p = SMOKE_PARAMS
    runs: dict[str, dict] = {}
    for label, kwargs in (
        ("inline", {"parallel": False}),
        ("process", {"parallel": True}),
        ("reference_engine", {"parallel": False, "fast_path": False}),
    ):
        sharded = ShardedSimulation(scale_builders(p), SEED, **kwargs)
        per_zone = sharded.run(SMOKE_SIM_S)
        runs[label] = {"digest": sharded.boundary_digest, "results": per_zone}
    sim, zones = build_scale_monolithic(SEED, p)
    sim.run(until=SMOKE_SIM_S)
    mono = {z.name: z.stats.as_dict() for z in zones}
    sim.close()
    digests = {label: r["digest"] for label, r in runs.items()}
    digests_match = len(set(digests.values())) == 1
    results_match = all(r["results"] == mono for r in runs.values())
    tot = _totals(runs["inline"]["results"])
    return {
        "sim_s": SMOKE_SIM_S,
        "boundary_digests": digests,
        "digests_match": digests_match,
        "results_match_monolithic": results_match,
        "sessions": tot["sessions"],
        "fluid_enters": tot["fluid_enters"],
        "fluid_exits": tot["fluid_exits"],
        "errors": tot["errors"],
        "ok": digests_match and results_match and tot["sessions"] > 0,
    }


def run_bench(quick: bool = False) -> dict:
    if quick:
        p, sim_s, base_s = QUICK_PARAMS, QUICK_SIM_S, QUICK_BASELINE_SIM_S
        target, session_floor = QUICK_FLOOR, QUICK_SESSION_FLOOR
        par_target, par_slice_s = QUICK_PARALLEL_FLOOR, QUICK_SIM_S
    else:
        p, sim_s, base_s = FULL_PARAMS, FULL_SIM_S, FULL_BASELINE_SIM_S
        target, session_floor = FULL_TARGET, FULL_SESSION_FLOOR
        par_target, par_slice_s = FULL_PARALLEL_TARGET, PARALLEL_SLICE_SIM_S
    determinism = check_determinism()
    placement = bench_placement(p)
    parallel = bench_parallel_section(p, par_slice_s, par_target)
    baseline = bench_baseline_slice(p, base_s)
    scale = bench_scale_run(p, sim_s)
    speedup = scale["sessions_per_wall_s"] / baseline["sessions_per_wall_s"]
    return {
        **provenance(),
        "mode": "quick" if quick else "full",
        "params": dataclasses.asdict(p),
        "results": {
            "determinism": determinism,
            "placement": placement,
            "parallel": parallel,
            "baseline_single_shard": baseline,
            "scale_run": scale,
        },
        "acceptance": {
            "metric": "scale_run.sessions_per_wall_s / baseline.sessions_per_wall_s",
            "target_speedup": target,
            "measured_speedup": speedup,
            "session_floor": session_floor,
            "measured_sessions": scale["sessions"],
            "determinism_ok": determinism["ok"],
            "parallel_target_speedup": par_target,
            "parallel_measured_speedup": parallel["measured_speedup"],
            "parallel_hardware_limited": parallel["hardware_limited"],
            "parallel_ok": parallel["ok"],
            "placement_ok": placement.get("ok", True),
            "errors": scale["errors"],
            "pass": (
                speedup >= target
                and scale["sessions"] >= session_floor
                and determinism["ok"]
                and parallel["ok"]
                and placement.get("ok", True)
            ),
        },
    }


def write_report(report: dict) -> pathlib.Path:
    path = REPO_ROOT / "BENCH_scale.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    report = run_bench(quick=quick)
    path = write_report(report)
    det = report["results"]["determinism"]
    par = report["results"]["parallel"]
    place = report["results"]["placement"]
    base = report["results"]["baseline_single_shard"]
    scale = report["results"]["scale_run"]
    acc = report["acceptance"]
    print(f"determinism: digests_match={det['digests_match']} "
          f"results_match={det['results_match_monolithic']} "
          f"(fluid enters {det['fluid_enters']}, exits {det['fluid_exits']})")
    adapt = par["adaptive_vs_static"]
    print(f"parallel : {par['measured_speedup']:.2f}x process-vs-inline on "
          f"{par['n_shards']} shards ({par['cpu_count']} cpus"
          f"{', hardware-limited' if par['hardware_limited'] else ''}), "
          f"digests_match={par['digests_match']}, adaptive windows "
          f"{adapt['adaptive_windows']} <= static {adapt['static_windows']} "
          f"-> {'OK' if par['ok'] else 'FAIL'}")
    if place.get("enabled"):
        print(f"placement: affinity cross-traffic "
              f"{place['affinity']['cross_weight_fraction']:.1%} vs scatter "
              f"{place['scatter']['cross_weight_fraction']:.1%} "
              f"({place['n_fleets']} fleets of {place['fleet_size']})")
    print(f"baseline : {base['sessions']:,} sessions over {base['sim_s']:.0f} sim-s "
          f"in {base['wall_clock_s']:.1f}s -> {base['sessions_per_wall_s']:,.0f} sess/s")
    print(f"scale run: {scale['sessions']:,} sessions, {scale['n_vms']:,} VMs, "
          f"{scale['sim_s']:.0f} sim-s in {scale['wall_clock_s']:.1f}s "
          f"-> {scale['sessions_per_wall_s']:,.0f} sess/s "
          f"({scale['fluid_byte_fraction']:.1%} of media bytes fluid, "
          f"{scale['errors']} errors)")
    print(f"acceptance: {acc['measured_speedup']:.2f}x vs {acc['target_speedup']}x "
          f"target, {acc['measured_sessions']:,} sessions vs "
          f"{acc['session_floor']:,} floor "
          f"-> {'PASS' if acc['pass'] else 'FAIL'}")
    print(f"report: {path}")
    return 0 if acc["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
