"""Pytest wrapper around the simulator fast-path benchmark.

Runs :mod:`benchmarks.bench_sim` in quick mode and asserts a conservative
floor (2x) on the end-to-end iperf speedup so CI catches an engine/dataplane
fast-path regression without being flaky on loaded machines.  The committed
``BENCH_sim.json`` is produced by the direct, longer run
(``python benchmarks/bench_sim.py``, 3x acceptance target).
"""

from __future__ import annotations

from benchmarks.bench_sim import run_bench, write_report

# Loaded shared CI runners can halve throughput; the direct run demonstrates
# the real >= 3x, this floor only guards against losing the fast path.
FLOOR = 2.0


def test_sim_fastpath_speedup():
    report = run_bench(quick=True)
    write_report(report)
    results = report["results"]
    assert results["iperf_e2e"]["speedup"] >= FLOOR
    # The raw callback lane must outpace process-lane dispatch outright.
    assert results["dispatch"]["callback_lane_speedup"] >= 1.2
    assert results["iperf_e2e"]["simulated_packets"] > 1000
