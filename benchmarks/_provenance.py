"""Shared provenance stamping for BENCH_*.json reports.

Every benchmark report carries the same header — generation time, Python
version, and the git revision it was produced from — so a series of
BENCH_*.json files checked in over time forms a comparable trajectory.
Benchmarks are measurement scripts, not simulation code, so reading the
wall clock here is fine (the determinism linter does not cover this
directory).
"""

from __future__ import annotations

import pathlib
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def git_revision() -> str:
    """Short SHA of HEAD, with a ``-dirty`` suffix for uncommitted changes;
    ``"unknown"`` outside a git checkout."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
        if sha.returncode != 0:
            return "unknown"
        rev = sha.stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
        if dirty.returncode == 0 and dirty.stdout.strip():
            rev += "-dirty"
        return rev
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def provenance() -> dict:
    """The common report header: splice into the top of each report dict."""
    return {
        "generated_unix": time.time(),
        "python": sys.version.split()[0],
        "git_revision": git_revision(),
    }
