"""Private-cloud cross-check (§V-A).

The paper repeated the Figure-2 experiment on an OpenNebula 3.0 private
cloud "in order to cross-check the validity of the results" and found them
"very much aligned" with the EC2 numbers.  We rerun two representative load
points on the private provider and assert per-mode alignment with the
public-cloud run.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.scenarios.experiments import run_fig2_point

MODES = ("basic", "hip")
LOADS = (10, 30)


@pytest.mark.benchmark(group="private-cloud")
def test_private_cloud_alignment(benchmark, bench_mode, report_dir):
    results: dict = {}

    def run_all():
        for provider in ("public", "private"):
            for mode in MODES:
                for n in LOADS:
                    results[(provider, mode, n)] = run_fig2_point(
                        mode, n_clients=n, provider_kind=provider,
                        duration=bench_mode["fig2_duration"],
                        warmup=bench_mode["fig2_warmup"], seed=42,
                    )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = ["Private-cloud cross-check — throughput (req/s), public vs private",
             f"{'mode':>6s} | {'clients':>7s} | {'public':>8s} | {'private':>8s} | ratio"]
    for mode in MODES:
        for n in LOADS:
            pub = results[("public", mode, n)].throughput
            prv = results[("private", mode, n)].throughput
            lines.append(
                f"{mode:>6s} | {n:7d} | {pub:8.1f} | {prv:8.1f} | {prv / pub:5.2f}"
            )
    write_report(report_dir, "private_cloud_crosscheck", lines)

    for mode in MODES:
        for n in LOADS:
            pub = results[("public", mode, n)].throughput
            prv = results[("private", mode, n)].throughput
            # "Very much aligned": within 20% at every measured point.
            assert prv == pytest.approx(pub, rel=0.20), (mode, n)
    # The security ordering also holds inside the private cloud.
    for n in LOADS:
        assert (results[("private", "basic", n)].throughput
                >= results[("private", "hip", n)].throughput * 0.98)
