"""§V-B response-time table: httperf at 120 req/s, query cache ON.

The paper reports mean response times of 116.4 ms (Basic), 132.2 ms (HIP)
and 128.3 ms (SSL) for a single web server + database with MySQL query
caching enabled, under a 120 req/s open-loop load.

Shape assertions: Basic < SSL < HIP, each security gap in the ~3-20 % band,
and "response times and standard deviations largely comparable".
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.scenarios.experiments import HttperfPoint, run_httperf_point

MODES = ("basic", "hip", "ssl")
PAPER_MS = {"basic": 116.4, "hip": 132.2, "ssl": 128.3}


@pytest.mark.benchmark(group="httperf")
def test_httperf_response_times(benchmark, bench_mode, report_dir):
    results: dict[str, HttperfPoint] = {}

    def run_all():
        for mode in MODES:
            results[mode] = run_httperf_point(
                mode, rate=120.0, duration=bench_mode["httperf_duration"], seed=42,
            )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = ["§V-B — httperf @ 120 req/s, single web server, query cache ON",
             f"{'mode':>6s} | {'mean ms':>8s} | {'sd ms':>7s} | {'p95 ms':>7s} | "
             f"{'ok':>5s} | {'fail':>4s} | paper mean"]
    for mode in MODES:
        p = results[mode]
        lines.append(
            f"{mode:>6s} | {p.mean_ms:8.1f} | {p.stdev_ms:7.1f} | {p.p95_ms:7.1f} | "
            f"{p.successes:5d} | {p.failures:4d} | {PAPER_MS[mode]:6.1f} ms"
        )
    write_report(report_dir, "httperf_response_table", lines)

    basic, hip, ssl = results["basic"], results["hip"], results["ssl"]
    # Ordering: basic fastest; both secured modes cost extra; HIP does not
    # beat SSL (the LSI-translation penalty) — allowing for run noise in the
    # HIP-vs-SSL hairline gap the paper itself calls "largely comparable".
    assert basic.mean_ms < ssl.mean_ms
    assert basic.mean_ms < hip.mean_ms
    assert hip.mean_ms >= ssl.mean_ms * 0.97
    # Gaps are moderate, as in the paper (HIP +13.6 %, SSL +10.2 % there).
    assert hip.mean_ms < basic.mean_ms * 1.35
    assert ssl.mean_ms < basic.mean_ms * 1.30
    # The open-loop load is sustainable in every mode.
    for mode in MODES:
        assert results[mode].failures <= results[mode].successes * 0.02
