"""Ablation (§II-B): BEET-mode ESP "is more bandwidth-efficient than the
tunnel mode".

Measures per-packet wire overhead and end-to-end iperf goodput for BEET vs
tunnel-mode associations on an identical link, plus the null-encryption
(auth-only) transform for reference.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import write_report
from repro.apps.iperf import run_iperf
from repro.hip.daemon import HipConfig, HipDaemon
from repro.hip.esp import EspMode, SecurityAssociation
from repro.hip.identity import HostIdentity
from repro.net.addresses import ipv4, ipv6
from repro.net.packet import IPHeader, Packet, TCPHeader, VirtualPayload
from repro.net.tcp import TcpStack
from repro.net.topology import lan_pair
from repro.sim import Simulator

A, B = ipv4("10.0.0.1"), ipv4("10.0.0.2")


def _iperf_with_mode(ident_a, ident_b, mode: EspMode, encrypt: bool,
                     n_bytes: int) -> float:
    sim = Simulator()
    a, b = lan_pair(sim, "a", "b", bandwidth_bps=100e6, delay_s=5e-4)
    cfg = HipConfig(esp_mode=mode, esp_encrypt=encrypt, real_crypto=False)
    da = HipDaemon(a, ident_a, rng=random.Random(1), config=cfg)
    db = HipDaemon(b, ident_b, rng=random.Random(2), config=cfg)
    da.add_peer(db.hit, [B])
    db.add_peer(da.hit, [A])
    ta, tb = TcpStack(a), TcpStack(b)
    proc = sim.process(run_iperf(tb, ta, db.hit, n_bytes=n_bytes))
    result = sim.run(until=proc)
    return result.throughput_mbps


@pytest.mark.benchmark(group="ablation-esp")
def test_beet_vs_tunnel_goodput(benchmark, bench_mode, report_dir):
    gen = random.Random(11)
    ident_a = HostIdentity.generate(gen, "rsa", rsa_bits=bench_mode["rsa_bits"])
    ident_b = HostIdentity.generate(gen, "rsa", rsa_bits=bench_mode["rsa_bits"])
    n_bytes = bench_mode["iperf_bytes"] // 2

    def run_all():
        return {
            "beet": _iperf_with_mode(ident_a, ident_b, EspMode.BEET, True, n_bytes),
            "tunnel": _iperf_with_mode(ident_a, ident_b, EspMode.TUNNEL, True, n_bytes),
            "beet-null": _iperf_with_mode(ident_a, ident_b, EspMode.BEET, False, n_bytes),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = ["Ablation — ESP mode goodput over a 100 Mbit/s link (iperf)",
             f"{'transform':>10s} | {'Mbit/s':>7s}"]
    for name, mbps in results.items():
        lines.append(f"{name:>10s} | {mbps:7.2f}")
    write_report(report_dir, "ablation_esp_mode", lines)

    # BEET strips the inner IP header: strictly better goodput than tunnel.
    assert results["beet"] > results["tunnel"]
    # Auth-only drops the IV and padding: best of the three.
    assert results["beet-null"] >= results["beet"]


@pytest.mark.benchmark(group="ablation-esp")
def test_per_packet_overhead_accounting(benchmark, report_dir):
    """Static overhead table for a 1448-byte TCP segment."""
    enc, auth = bytes(16), bytes(20)
    hit_a, hit_b = ipv6("2001:10::a"), ipv6("2001:10::b")
    inner = Packet(
        headers=(IPHeader(src=ipv4("1.0.0.1"), dst=ipv4("1.0.0.2"), proto="tcp"),
                 TCPHeader(src_port=1, dst_port=2)),
        payload=VirtualPayload(1448),
    )

    def overheads():
        rows = {}
        for label, mode, encrypt in (
            ("beet", EspMode.BEET, True),
            ("tunnel", EspMode.TUNNEL, True),
            ("beet-null", EspMode.BEET, False),
        ):
            sa = SecurityAssociation(
                spi=1, enc_key=enc, auth_key=auth, src_hit=hit_a, dst_hit=hit_b,
                mode=mode, encrypt=encrypt,
            )
            rows[label] = sa.overhead_bytes(inner)
        return rows

    rows = benchmark.pedantic(overheads, rounds=1, iterations=1)
    lines = ["Ablation — ESP wire overhead per 1448-byte TCP segment",
             f"{'transform':>10s} | {'overhead bytes':>14s}"]
    for label, bytes_ in rows.items():
        lines.append(f"{label:>10s} | {bytes_:14d}")
    write_report(report_dir, "ablation_esp_overhead", lines)

    assert rows["tunnel"] - rows["beet"] >= 16  # the inner IPv4 header
    assert rows["beet-null"] < rows["beet"]  # no IV, no padding
