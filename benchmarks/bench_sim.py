"""Simulator fast-path benchmark: reference vs callback-lane engine.

Two measurements, written to ``BENCH_sim.json`` at the repo root:

* ``dispatch`` — raw scheduler throughput (events/sec) of the classic
  process-ticker (``yield sim.timeout(dt)`` per event) against the raw
  callback lane (``sim.call_later`` chain).  This isolates the engine: no
  packets, no TCP, just heap pops and dispatch.

* ``iperf_e2e`` — the headline acceptance number.  A full iperf transfer
  over the LAN-pair testbed (TCP + links + routing) is run on the retained
  reference engine/dataplane (``fast_path=False``: generator processes,
  per-packet delivery processes, uncached lookups) and on the fast path
  (``fast_path=True``).  Both modes produce bit-identical simulated results
  (asserted here; the replay-digest tests prove event-trace equality), so
  the ratio of simulated-packets-per-wall-second is a pure engine/dataplane
  speedup.  Target: >= 3x.

Wall-clock noise is handled by interleaving ref/fast rounds and taking the
best (max packets-per-second) of each mode.

Run directly::

    PYTHONPATH=src python benchmarks/bench_sim.py            # full, 3x target
    PYTHONPATH=src python benchmarks/bench_sim.py --quick    # CI smoke, 2x floor

The quick mode uses a smaller transfer and fewer rounds and exits nonzero
below a conservative 2x floor (loaded CI runners can halve throughput; the
full run demonstrates the real >= 3x).
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.apps.iperf import run_iperf
from repro.metrics import METRICS
from repro.net.tcp import TcpStack
from repro.net.topology import lan_pair
from repro.sim.engine import Simulator

try:  # imported as a package (tests) or run as a script (CI / local)
    from benchmarks._provenance import provenance
except ImportError:  # pragma: no cover
    from _provenance import provenance

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

FULL_TARGET = 3.0
QUICK_FLOOR = 2.0


# -- scheduler microbench -----------------------------------------------------

def _time_ticker(n_events: int) -> float:
    """Wall seconds for ``n_events`` process-lane timeout/resume cycles."""
    sim = Simulator(fast_path=True)

    def ticker():
        timeout = sim.timeout
        for _ in range(n_events):
            yield timeout(1e-6)

    sim.process(ticker())
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    sim.close()
    return wall


def _time_call_later_chain(n_events: int) -> float:
    """Wall seconds for ``n_events`` raw callback-lane timer firings."""
    sim = Simulator(fast_path=True)
    remaining = n_events

    def tick():
        nonlocal remaining
        remaining -= 1
        if remaining:
            sim.call_later(1e-6, tick)

    sim.call_later(1e-6, tick)
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    sim.close()
    return wall


def bench_dispatch(n_events: int, rounds: int) -> dict:
    proc_walls, cb_walls = [], []
    _time_ticker(1000)  # warm up bytecode caches before timing
    _time_call_later_chain(1000)
    for _ in range(rounds):
        proc_walls.append(_time_ticker(n_events))
        cb_walls.append(_time_call_later_chain(n_events))
    proc_eps = n_events / min(proc_walls)
    cb_eps = n_events / min(cb_walls)
    return {
        "events": n_events,
        "rounds": rounds,
        "process_ticker_events_per_s": proc_eps,
        "call_later_chain_events_per_s": cb_eps,
        "callback_lane_speedup": cb_eps / proc_eps,
    }


# -- end-to-end iperf ---------------------------------------------------------

def _run_iperf_once(fast: bool, n_bytes: int) -> tuple[float, int, object]:
    """One transfer; returns (wall_s, simulated_packets, IperfResult)."""
    sim = Simulator(fast_path=fast)
    node_a, node_b = lan_pair(sim)
    tcp_a, tcp_b = TcpStack(node_a), TcpStack(node_b)
    box: list = []

    def main():
        res = yield from run_iperf(tcp_b, tcp_a, node_b.addresses()[0], n_bytes)
        box.append(res)

    sim.process(main())
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    sim.close()
    # Idle endpoints flush their batched tallies, and the heap is drained
    # here, so the global counter is complete in both modes.
    packets = METRICS.counter("link.tx_packets").value
    METRICS.reset()
    return wall, packets, box[0]


def bench_iperf(n_bytes: int, rounds: int) -> dict:
    ref_walls, fast_walls = [], []
    packets = None
    results = set()
    # Interleave the modes so machine-load drift hits both equally; score
    # each mode by its best round.
    for _ in range(rounds):
        ref_wall, ref_pkts, ref_res = _run_iperf_once(False, n_bytes)
        fast_wall, fast_pkts, fast_res = _run_iperf_once(True, n_bytes)
        if ref_pkts != fast_pkts or ref_res != fast_res:
            raise AssertionError(
                f"fast path diverged: ref=({ref_pkts}, {ref_res}) "
                f"fast=({fast_pkts}, {fast_res})"
            )
        packets = ref_pkts
        results.add(repr(ref_res))
        ref_walls.append(ref_wall)
        fast_walls.append(fast_wall)
    assert len(results) == 1, "nondeterministic simulated result across rounds"
    ref_pps = packets / min(ref_walls)
    fast_pps = packets / min(fast_walls)
    return {
        "transfer_bytes": n_bytes,
        "rounds": rounds,
        "simulated_packets": packets,
        "ref_wall_s": min(ref_walls),
        "fast_wall_s": min(fast_walls),
        "ref_packets_per_s": ref_pps,
        "fast_packets_per_s": fast_pps,
        "speedup": fast_pps / ref_pps,
        "simulated_result": results.pop(),
    }


def run_bench(quick: bool = False) -> dict:
    if quick:
        dispatch = bench_dispatch(n_events=20_000, rounds=2)
        iperf = bench_iperf(n_bytes=5_000_000, rounds=2)
        target = QUICK_FLOOR
    else:
        dispatch = bench_dispatch(n_events=100_000, rounds=3)
        iperf = bench_iperf(n_bytes=20_000_000, rounds=4)
        target = FULL_TARGET
    measured = iperf["speedup"]
    return {
        **provenance(),
        "mode": "quick" if quick else "full",
        "results": {"dispatch": dispatch, "iperf_e2e": iperf},
        "acceptance": {
            "metric": "iperf_e2e.speedup",
            "target_speedup": target,
            "measured_speedup": measured,
            "pass": measured >= target,
        },
    }


def write_report(report: dict) -> pathlib.Path:
    path = REPO_ROOT / "BENCH_sim.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    report = run_bench(quick=quick)
    path = write_report(report)
    disp = report["results"]["dispatch"]
    e2e = report["results"]["iperf_e2e"]
    print(f"dispatch: process ticker {disp['process_ticker_events_per_s']:,.0f} ev/s, "
          f"call_later chain {disp['call_later_chain_events_per_s']:,.0f} ev/s "
          f"({disp['callback_lane_speedup']:.2f}x)")
    print(f"iperf e2e: ref {e2e['ref_packets_per_s']:,.0f} pkt/s, "
          f"fast {e2e['fast_packets_per_s']:,.0f} pkt/s "
          f"({e2e['speedup']:.2f}x over {e2e['simulated_packets']} packets)")
    acc = report["acceptance"]
    print(f"acceptance: {acc['measured_speedup']:.2f}x vs {acc['target_speedup']}x target "
          f"-> {'PASS' if acc['pass'] else 'FAIL'}  (written to {path})")
    return 0 if acc["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
