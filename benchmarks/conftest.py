"""Shared benchmark configuration.

Each benchmark regenerates one table/figure of the paper.  Results are
printed and also written to ``bench_results/*.txt`` so the numbers survive
pytest's output capture.  Set ``REPRO_BENCH_FULL=1`` for the full
paper-scale sweeps (longer durations, all client counts); the default quick
mode keeps total runtime manageable while preserving every qualitative
shape.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.metrics import METRICS, RECORDER
from repro.metrics.report import metrics_json

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench_results"

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")


@pytest.fixture(scope="session")
def bench_mode() -> dict:
    if FULL:
        return {
            "full": True,
            "fig2_clients": [2, 3, 4, 6, 10, 20, 30, 50],
            "fig2_duration": 8.0,
            "fig2_warmup": 2.0,
            "httperf_duration": 10.0,
            "iperf_bytes": 12_000_000,
            "ping_count": 20,
            "rsa_bits": 1024,
        }
    return {
        "full": False,
        "fig2_clients": [2, 10, 30, 50],
        "fig2_duration": 3.5,
        "fig2_warmup": 1.0,
        "httperf_duration": 5.0,
        "iperf_bytes": 6_000_000,
        "ping_count": 20,
        "rsa_bits": 512,
    }


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(autouse=True)
def metrics_snapshot(request, report_dir):
    """Per-benchmark layer breakdown: reset the registry, dump it afterwards.

    Every benchmark gets a ``<test>.metrics.json`` (schema ``repro-metrics/1``)
    next to its text table, so throughput/latency numbers come with the
    per-layer packet and drop counts that produced them.
    """
    METRICS.reset()
    yield
    payload = metrics_json(METRICS, RECORDER, extra={"benchmark": request.node.name})
    path = report_dir / f"{request.node.name}.metrics.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def write_report(report_dir: pathlib.Path, name: str, lines: list[str]) -> None:
    text = "\n".join(lines)
    print("\n" + text)
    (report_dir / f"{name}.txt").write_text(text + "\n")
